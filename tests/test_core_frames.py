"""Tests for frame management and the IC3 SAT queries.

Every test in this module runs against both frame-management substrates
(the monolithic single-solver manager and the per-frame baseline) via the
``backend`` fixture; backend-specific behaviour has its own classes at
the bottom — and under both registered SAT kernels via the autouse
``sat_kernel`` fixture.
"""

import sys

import pytest

from repro.benchgen import token_ring, modular_counter
from repro.core.frames import (
    FrameManager,
    MonolithicFrameManager,
    PerFrameFrameManager,
    available_frame_backends,
    make_frame_manager,
)
from repro.core.options import IC3Options
from repro.core.stats import IC3Stats
from repro.logic import Cube
from repro.ts import TransitionSystem


@pytest.fixture(params=["monolithic", "per-frame"])
def backend(request):
    return request.param


# The SAT kernel every manager in this file runs on; the autouse fixture
# below sweeps it so the whole substrate suite exercises both kernels.
_SAT_KERNEL = "default"


@pytest.fixture(params=["default", "arena"], autouse=True)
def sat_kernel(request, monkeypatch):
    monkeypatch.setattr(sys.modules[__name__], "_SAT_KERNEL", request.param)
    return request.param


def _manager(case=None, backend="monolithic", **option_kwargs):
    case = case if case is not None else token_ring(3)
    ts = TransitionSystem(case.aig)
    option_kwargs.setdefault("sat_backend", _SAT_KERNEL)
    options = IC3Options(frame_backend=backend, **option_kwargs)
    stats = IC3Stats()
    manager = FrameManager(ts, options, stats)
    return manager, ts, stats


class TestFrameBookkeeping:
    def test_initial_state(self, backend):
        manager, _, _ = _manager(backend=backend)
        assert manager.top_level == 0
        assert manager.lemma_counts() == [0]

    def test_add_frame(self, backend):
        manager, _, stats = _manager(backend=backend)
        assert manager.add_frame() == 1
        assert manager.add_frame() == 2
        assert manager.top_level == 2
        assert stats.frames_opened == 2

    def test_add_blocked_cube_levels(self, backend):
        manager, ts, stats = _manager(backend=backend)
        manager.add_frame()
        manager.add_frame()
        cube = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        manager.add_blocked_cube(cube, 2)
        assert manager.lemmas_exactly_at(2) == [cube]
        assert manager.lemmas_exactly_at(1) == []
        assert manager.lemmas_at_or_above(1) == [cube]
        assert stats.lemmas_added == 1

    def test_add_blocked_cube_invalid_level(self, backend):
        manager, ts, _ = _manager(backend=backend)
        with pytest.raises(ValueError):
            manager.add_blocked_cube(Cube([ts.latch_vars[0]]), 1)

    def test_subsumption_removes_weaker_lemmas(self, backend):
        manager, ts, stats = _manager(backend=backend)
        manager.add_frame()
        weak = Cube([ts.latch_vars[0], ts.latch_vars[1], ts.latch_vars[2]])
        strong = Cube([ts.latch_vars[0]])
        manager.add_blocked_cube(weak, 1)
        manager.add_blocked_cube(strong, 1)
        assert manager.lemmas_exactly_at(1) == [strong]
        assert stats.subsumed_lemmas == 1

    def test_subsumption_only_below_new_level(self, backend):
        manager, ts, _ = _manager(backend=backend)
        manager.add_frame()
        manager.add_frame()
        weak = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        strong = Cube([ts.latch_vars[0]])
        manager.add_blocked_cube(weak, 2)
        manager.add_blocked_cube(strong, 1)
        # The weak lemma lives at level 2 > 1, so it must survive.
        assert weak in manager.lemmas_exactly_at(2)

    def test_promote_cube(self, backend):
        manager, ts, stats = _manager(backend=backend)
        manager.add_frame()
        manager.add_frame()
        cube = Cube([ts.latch_vars[1]])
        manager.add_blocked_cube(cube, 1)
        manager.promote_cube(cube, 1, 2)
        assert manager.lemmas_exactly_at(1) == []
        assert manager.lemmas_exactly_at(2) == [cube]
        assert stats.lemmas_pushed == 1

    def test_is_blocked_syntactically(self, backend):
        manager, ts, _ = _manager(backend=backend)
        manager.add_frame()
        manager.add_frame()
        lemma = Cube([ts.latch_vars[1]])
        manager.add_blocked_cube(lemma, 2)
        bigger = Cube([ts.latch_vars[1], ts.latch_vars[2]])
        assert manager.is_blocked_syntactically(bigger, 1)
        assert manager.is_blocked_syntactically(bigger, 2)
        assert not manager.is_blocked_syntactically(Cube([ts.latch_vars[2]]), 1)

    def test_frames_equal_detection(self, backend):
        manager, ts, _ = _manager(backend=backend)
        manager.add_frame()
        assert manager.frames_equal(1)  # nothing stored at level 1 yet
        manager.add_blocked_cube(Cube([ts.latch_vars[1]]), 1)
        assert not manager.frames_equal(1)

    def test_frame_clauses_are_negations(self, backend):
        manager, ts, _ = _manager(backend=backend)
        manager.add_frame()
        cube = Cube([ts.latch_vars[1], -ts.latch_vars[2]])
        manager.add_blocked_cube(cube, 1)
        clauses = manager.frame_clauses(1)
        assert clauses == [cube.negate()]


class TestQueries:
    def test_get_bad_state_level0_for_safe_design(self, backend):
        manager, _, _ = _manager(token_ring(3), backend=backend)
        assert manager.get_bad_state(0) is None

    def test_get_bad_state_finds_violation(self, backend):
        # bad value 0 is the initial state itself.
        case = modular_counter(3, modulus=8, bad_value=0)
        manager, ts, _ = _manager(case, backend=backend)
        bad = manager.get_bad_state(0)
        assert bad is not None
        assert ts.cube_intersects_init(bad.state)

    def test_consecution_holds_for_unreachable_cube(self, backend):
        # In the token ring, "two tokens at once" is unreachable and its
        # negation is inductive relative to the one-token initial frame.
        case = token_ring(3)
        manager, ts, _ = _manager(case, backend=backend)
        manager.add_frame()
        two_tokens = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        result = manager.consecution(0, two_tokens)
        assert result.holds
        assert result.core_cube is not None
        assert result.core_cube.literal_set <= two_tokens.literal_set

    def test_consecution_fails_with_counterexample(self, backend):
        # "token in stage 1" is reachable from the initial state in one step.
        case = token_ring(3)
        manager, ts, _ = _manager(case, backend=backend)
        manager.add_frame()
        reachable = Cube([ts.latch_vars[1]])
        result = manager.consecution(0, reachable)
        assert not result.holds
        assert result.predecessor is not None
        assert result.successor is not None
        # The CTP successor satisfies the queried cube.
        assert reachable.literal_set <= result.successor.literal_set
        # The predecessor is an initial state (frame 0 = I).
        assert ts.cube_intersects_init(result.predecessor)

    def test_consecution_uses_frame_lemmas(self, backend):
        case = token_ring(3)
        manager, ts, _ = _manager(case, backend=backend)
        manager.add_frame()
        target = Cube([ts.latch_vars[1], -ts.latch_vars[0], -ts.latch_vars[2]])
        # Without extra lemmas the cube is reachable from F_1 = ⊤ ...
        assert not manager.consecution(1, target).holds
        # ... but once the frame says "token never in stage 0", it is not.
        manager.add_blocked_cube(Cube([ts.latch_vars[0]]), 1)
        assert manager.consecution(1, target).holds

    def test_counters_track_sat_calls(self, backend):
        manager, ts, stats = _manager(token_ring(3), backend=backend)
        manager.add_frame()
        manager.consecution(0, Cube([ts.latch_vars[1]]))
        manager.get_bad_state(0)
        assert stats.sat_calls == 2
        assert stats.consecution_calls == 1

    def test_lift_predecessor_returns_subcube(self, backend):
        case = token_ring(4)
        manager, ts, _ = _manager(case, backend=backend)
        manager.add_frame()
        result = manager.consecution(0, Cube([ts.latch_vars[1]]))
        assert not result.holds
        lifted = manager.lift_predecessor(
            result.predecessor, result.inputs, Cube([ts.latch_vars[1]])
        )
        assert lifted.literal_set <= result.predecessor.literal_set
        assert len(lifted) >= 1

    def test_solver_rebuild_preserves_answers(self, backend):
        case = token_ring(3)
        manager, ts, _ = _manager(case, backend=backend, solver_rebuild_interval=2)
        manager.add_frame()
        cube = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        results = [manager.consecution(0, cube).holds for _ in range(8)]
        assert all(results)

    def test_total_lemmas(self, backend):
        manager, ts, _ = _manager(backend=backend)
        manager.add_frame()
        manager.add_blocked_cube(Cube([ts.latch_vars[1]]), 1)
        manager.add_blocked_cube(Cube([ts.latch_vars[2]]), 1)
        assert manager.total_lemmas() == 2


class TestBackendSelection:
    def test_available_backends(self):
        assert available_frame_backends() == ["monolithic", "per-frame"]

    def test_factory_dispatches_on_options(self):
        ts = TransitionSystem(token_ring(3).aig)
        mono = make_frame_manager(ts, IC3Options(), IC3Stats())
        assert isinstance(mono, MonolithicFrameManager)
        per_frame = make_frame_manager(
            ts, IC3Options(frame_backend="per-frame"), IC3Stats()
        )
        assert isinstance(per_frame, PerFrameFrameManager)

    def test_unknown_backend_rejected_by_options(self):
        with pytest.raises(ValueError, match="frame_backend"):
            IC3Options(frame_backend="nonsense").validate()


class TestMonolithicSubstrate:
    def test_lemma_added_once_and_shared(self):
        manager, ts, stats = _manager(backend="monolithic")
        for _ in range(3):
            manager.add_frame()
        cube = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        manager.add_blocked_cube(cube, 3)
        # One physical clause serves logical frames 1..3.
        assert stats.lemma_clauses_added == 1
        assert stats.solver_clauses_shared == 2
        assert stats.solver_clauses_duplicated == 0

    def test_promotion_moves_single_clause(self):
        manager, ts, stats = _manager(backend="monolithic")
        manager.add_frame()
        manager.add_frame()
        cube = Cube([ts.latch_vars[1]])
        manager.add_blocked_cube(cube, 1)
        manager.promote_cube(cube, 1, 2)
        # The move is deferred until a query needs it, then the old copy
        # is deleted: net one live clause.
        manager.consecution(2, Cube([ts.latch_vars[0]]))
        assert stats.lemma_clauses_added == 2
        assert stats.lemma_clauses_removed == 1

    def test_subsumed_lemma_clause_physically_removed(self):
        manager, ts, stats = _manager(backend="monolithic")
        manager.add_frame()
        weak = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        strong = Cube([ts.latch_vars[0]])
        manager.add_blocked_cube(weak, 1)
        manager.add_blocked_cube(strong, 1)
        assert stats.subsumed_lemmas == 1
        assert stats.lemma_clauses_removed == 1

    def test_duplicate_cube_below_higher_copy_shares_one_clause(self):
        # CTG blocking can re-add a cube at a level below an existing
        # higher-level copy; the higher clause already covers the lower
        # placement through the assumption suffix, so no copy is added
        # and subsuming one list entry must not delete the shared clause.
        manager, ts, stats = _manager(token_ring(4), backend="monolithic")
        for _ in range(5):
            manager.add_frame()
        x = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        manager.add_blocked_cube(x, 5)
        manager.add_blocked_cube(x, 2)
        assert stats.lemma_clauses_added == 1
        manager.add_blocked_cube(Cube([ts.latch_vars[0]]), 2)  # subsumes @2 only
        assert stats.lemma_clauses_removed == 0
        # The level-5 placement still blocks the cube for level-4 queries.
        assert manager.consecution(4, x) is not None

    def test_finalize_stats_reports_activation_accounting(self):
        manager, ts, stats = _manager(token_ring(4), backend="monolithic")
        manager.add_frame()
        result = manager.consecution(0, Cube([ts.latch_vars[1]]))
        assert not result.holds
        manager.lift_predecessor(
            result.predecessor, result.inputs, Cube([ts.latch_vars[1]])
        )
        manager.finalize_stats()
        assert stats.activation_vars_allocated >= 1

    def test_monolithic_honours_sat_backend_option(self):
        from repro.sat import register_sat_backend, unregister_sat_backend
        from repro.sat.solver import Solver

        instances = []

        class Tagged(Solver):
            def __init__(self):
                super().__init__()
                instances.append(self)

        register_sat_backend("frames-test", Tagged)
        try:
            manager, _, _ = _manager(
                backend="monolithic", sat_backend="frames-test"
            )
            assert len(instances) >= 2  # main + init (+ lift) contexts
        finally:
            unregister_sat_backend("frames-test")


class TestPerFrameSubstrate:
    def test_subsumed_lemmas_count_toward_garbage(self):
        # Satellite of ISSUE 4: dropped-but-live clauses feed the
        # rebuild heuristic instead of leaking silently.
        manager, ts, stats = _manager(backend="per-frame")
        manager.add_frame()
        manager.add_frame()
        weak = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        strong = Cube([ts.latch_vars[0]])
        manager.add_blocked_cube(weak, 2)  # copies in solvers 1 and 2
        manager.add_blocked_cube(strong, 2)
        assert stats.subsumed_lemmas == 1
        assert stats.solver_garbage_lemmas == 2
        assert manager._garbage[1] == 1 and manager._garbage[2] == 1

    def test_subsumption_garbage_triggers_rebuild(self):
        manager, ts, stats = _manager(backend="per-frame", solver_rebuild_interval=2)
        manager.add_frame()
        weak_a = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        weak_b = Cube([ts.latch_vars[0], ts.latch_vars[2]])
        strong = Cube([ts.latch_vars[0]])
        manager.add_blocked_cube(weak_a, 1)
        manager.add_blocked_cube(weak_b, 1)
        manager.add_blocked_cube(strong, 1)
        assert stats.solver_garbage_lemmas == 2
        # The garbage counter is at the threshold; the next consecution
        # note pushes it over and rebuilds.
        manager.consecution(1, Cube([ts.latch_vars[1], ts.latch_vars[2]]))
        assert stats.solver_rebuilds >= 1

    def test_lemma_clause_duplication_counted(self):
        manager, ts, stats = _manager(backend="per-frame")
        for _ in range(3):
            manager.add_frame()
        cube = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        manager.add_blocked_cube(cube, 3)
        assert stats.lemma_clauses_added == 3  # one copy per covered frame
        assert stats.solver_clauses_duplicated == 2


class TestBackendEquivalence:
    def test_same_query_answers_on_lemma_workload(self):
        results = {}
        for name in ("monolithic", "per-frame"):
            manager, ts, _ = _manager(token_ring(4), backend=name)
            manager.add_frame()
            manager.add_frame()
            latches = ts.latch_vars
            answers = []
            manager.add_blocked_cube(Cube([latches[0], latches[1]]), 1)
            manager.add_blocked_cube(Cube([latches[1], latches[2]]), 2)
            for level in (0, 1, 2):
                for i in range(len(latches)):
                    cube = Cube([latches[i], latches[(i + 1) % len(latches)]])
                    answers.append(manager.consecution(level, cube).holds)
                answers.append(manager.get_bad_state(level) is None)
            results[name] = answers
        assert results["monolithic"] == results["per-frame"]
