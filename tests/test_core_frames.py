"""Tests for frame management and the IC3 SAT queries."""

import pytest

from repro.benchgen import token_ring, modular_counter
from repro.core.frames import FrameManager
from repro.core.options import IC3Options
from repro.core.stats import IC3Stats
from repro.logic import Cube
from repro.ts import TransitionSystem


def _manager(case=None, **option_kwargs):
    case = case if case is not None else token_ring(3)
    ts = TransitionSystem(case.aig)
    options = IC3Options(**option_kwargs)
    stats = IC3Stats()
    manager = FrameManager(ts, options, stats)
    return manager, ts, stats


class TestFrameBookkeeping:
    def test_initial_state(self):
        manager, _, _ = _manager()
        assert manager.top_level == 0
        assert manager.lemma_counts() == [0]

    def test_add_frame(self):
        manager, _, stats = _manager()
        assert manager.add_frame() == 1
        assert manager.add_frame() == 2
        assert manager.top_level == 2
        assert stats.frames_opened == 2

    def test_add_blocked_cube_levels(self):
        manager, ts, stats = _manager()
        manager.add_frame()
        manager.add_frame()
        cube = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        manager.add_blocked_cube(cube, 2)
        assert manager.lemmas_exactly_at(2) == [cube]
        assert manager.lemmas_exactly_at(1) == []
        assert manager.lemmas_at_or_above(1) == [cube]
        assert stats.lemmas_added == 1

    def test_add_blocked_cube_invalid_level(self):
        manager, ts, _ = _manager()
        with pytest.raises(ValueError):
            manager.add_blocked_cube(Cube([ts.latch_vars[0]]), 1)

    def test_subsumption_removes_weaker_lemmas(self):
        manager, ts, stats = _manager()
        manager.add_frame()
        weak = Cube([ts.latch_vars[0], ts.latch_vars[1], ts.latch_vars[2]])
        strong = Cube([ts.latch_vars[0]])
        manager.add_blocked_cube(weak, 1)
        manager.add_blocked_cube(strong, 1)
        assert manager.lemmas_exactly_at(1) == [strong]
        assert stats.subsumed_lemmas == 1

    def test_subsumption_only_below_new_level(self):
        manager, ts, _ = _manager()
        manager.add_frame()
        manager.add_frame()
        weak = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        strong = Cube([ts.latch_vars[0]])
        manager.add_blocked_cube(weak, 2)
        manager.add_blocked_cube(strong, 1)
        # The weak lemma lives at level 2 > 1, so it must survive.
        assert weak in manager.lemmas_exactly_at(2)

    def test_promote_cube(self):
        manager, ts, stats = _manager()
        manager.add_frame()
        manager.add_frame()
        cube = Cube([ts.latch_vars[1]])
        manager.add_blocked_cube(cube, 1)
        manager.promote_cube(cube, 1, 2)
        assert manager.lemmas_exactly_at(1) == []
        assert manager.lemmas_exactly_at(2) == [cube]
        assert stats.lemmas_pushed == 1

    def test_is_blocked_syntactically(self):
        manager, ts, _ = _manager()
        manager.add_frame()
        manager.add_frame()
        lemma = Cube([ts.latch_vars[1]])
        manager.add_blocked_cube(lemma, 2)
        bigger = Cube([ts.latch_vars[1], ts.latch_vars[2]])
        assert manager.is_blocked_syntactically(bigger, 1)
        assert manager.is_blocked_syntactically(bigger, 2)
        assert not manager.is_blocked_syntactically(Cube([ts.latch_vars[2]]), 1)

    def test_frames_equal_detection(self):
        manager, ts, _ = _manager()
        manager.add_frame()
        assert manager.frames_equal(1)  # nothing stored at level 1 yet
        manager.add_blocked_cube(Cube([ts.latch_vars[1]]), 1)
        assert not manager.frames_equal(1)

    def test_frame_clauses_are_negations(self):
        manager, ts, _ = _manager()
        manager.add_frame()
        cube = Cube([ts.latch_vars[1], -ts.latch_vars[2]])
        manager.add_blocked_cube(cube, 1)
        clauses = manager.frame_clauses(1)
        assert clauses == [cube.negate()]


class TestQueries:
    def test_get_bad_state_level0_for_safe_design(self):
        manager, _, _ = _manager(token_ring(3))
        assert manager.get_bad_state(0) is None

    def test_get_bad_state_finds_violation(self):
        # bad value 0 is the initial state itself.
        case = modular_counter(3, modulus=8, bad_value=0)
        manager, ts, _ = _manager(case)
        bad = manager.get_bad_state(0)
        assert bad is not None
        assert ts.cube_intersects_init(bad.state)

    def test_consecution_holds_for_unreachable_cube(self):
        # In the token ring, "two tokens at once" is unreachable and its
        # negation is inductive relative to the one-token initial frame.
        case = token_ring(3)
        manager, ts, _ = _manager(case)
        manager.add_frame()
        two_tokens = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        result = manager.consecution(0, two_tokens)
        assert result.holds
        assert result.core_cube is not None
        assert result.core_cube.literal_set <= two_tokens.literal_set

    def test_consecution_fails_with_counterexample(self):
        # "token in stage 1" is reachable from the initial state in one step.
        case = token_ring(3)
        manager, ts, _ = _manager(case)
        manager.add_frame()
        reachable = Cube([ts.latch_vars[1]])
        result = manager.consecution(0, reachable)
        assert not result.holds
        assert result.predecessor is not None
        assert result.successor is not None
        # The CTP successor satisfies the queried cube.
        assert reachable.literal_set <= result.successor.literal_set
        # The predecessor is an initial state (frame 0 = I).
        assert ts.cube_intersects_init(result.predecessor)

    def test_consecution_uses_frame_lemmas(self):
        case = token_ring(3)
        manager, ts, _ = _manager(case)
        manager.add_frame()
        target = Cube([ts.latch_vars[1], -ts.latch_vars[0], -ts.latch_vars[2]])
        # Without extra lemmas the cube is reachable from F_1 = ⊤ ...
        assert not manager.consecution(1, target).holds
        # ... but once the frame says "token never in stage 0", it is not.
        manager.add_blocked_cube(Cube([ts.latch_vars[0]]), 1)
        assert manager.consecution(1, target).holds

    def test_counters_track_sat_calls(self):
        manager, ts, stats = _manager(token_ring(3))
        manager.add_frame()
        manager.consecution(0, Cube([ts.latch_vars[1]]))
        manager.get_bad_state(0)
        assert stats.sat_calls == 2
        assert stats.consecution_calls == 1

    def test_lift_predecessor_returns_subcube(self):
        case = token_ring(4)
        manager, ts, _ = _manager(case)
        manager.add_frame()
        result = manager.consecution(0, Cube([ts.latch_vars[1]]))
        assert not result.holds
        lifted = manager.lift_predecessor(
            result.predecessor, result.inputs, Cube([ts.latch_vars[1]])
        )
        assert lifted.literal_set <= result.predecessor.literal_set
        assert len(lifted) >= 1

    def test_solver_rebuild_preserves_answers(self):
        case = token_ring(3)
        manager, ts, _ = _manager(case, solver_rebuild_interval=2)
        manager.add_frame()
        cube = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        results = [manager.consecution(0, cube).holds for _ in range(8)]
        assert all(results)

    def test_total_lemmas(self):
        manager, ts, _ = _manager()
        manager.add_frame()
        manager.add_blocked_cube(Cube([ts.latch_vars[1]]), 1)
        manager.add_blocked_cube(Cube([ts.latch_vars[2]]), 1)
        assert manager.total_lemmas() == 2
