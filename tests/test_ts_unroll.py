"""Tests for the time-frame unroller (the substrate of BMC / k-induction).

Every test runs under both registered SAT kernels: the autouse fixture
below redirects the unroller's backend lookup so default-constructed
unrollers alternate between the reference solver and the flat arena.
"""

import pytest

from repro.aiger import AIG
from repro.benchgen import modular_counter, combination_lock
from repro.sat import Solver
from repro.sat.context import sat_backend as _lookup_backend
from repro.ts import Unroller
import repro.ts.unroll as _unroll_mod


@pytest.fixture(params=["default", "arena"], autouse=True)
def sat_kernel(request, monkeypatch):
    kernel = request.param
    monkeypatch.setattr(
        _unroll_mod, "sat_backend", lambda _name: _lookup_backend(kernel)
    )
    return kernel


def _counter_aig(width=3):
    case = modular_counter(width, modulus=1 << width, bad_value=(1 << width) - 1)
    return case.aig


class TestLiteralMapping:
    def test_frames_created_lazily(self):
        unroller = Unroller(_counter_aig())
        assert unroller.num_frames == 0
        unroller.lit_at(unroller.aig.latches[0].lit, 2)
        assert unroller.num_frames == 3

    def test_constants(self):
        unroller = Unroller(_counter_aig())
        assert unroller.lit_at(1, 0) > 0
        assert unroller.lit_at(0, 0) == -unroller.lit_at(1, 0)

    def test_negated_literals_map_to_negated_solver_literals(self):
        unroller = Unroller(_counter_aig())
        latch = unroller.aig.latches[0].lit
        assert unroller.lit_at(latch ^ 1, 0) == -unroller.lit_at(latch, 0)

    def test_distinct_frames_get_distinct_variables(self):
        unroller = Unroller(_counter_aig())
        latch = unroller.aig.latches[0].lit
        assert abs(unroller.lit_at(latch, 0)) != abs(unroller.lit_at(latch, 1))


class TestUnrollingSemantics:
    def test_initial_state_enforced(self):
        unroller = Unroller(_counter_aig())
        solver = unroller.solver
        # At frame 0 the counter is 0, so every latch literal is false.
        for latch in unroller.aig.latches:
            assert solver.solve([unroller.lit_at(latch.lit, 0)]) is False

    def test_counter_value_at_depth_matches_simulation(self):
        aig = _counter_aig(3)
        unroller = Unroller(aig)
        solver = unroller.solver
        for depth in range(6):
            # The counter must equal `depth` at frame `depth` (it increments each step).
            assumptions = []
            for index, latch in enumerate(aig.latches):
                lit = unroller.lit_at(latch.lit, depth)
                expected = bool((depth >> index) & 1)
                assumptions.append(lit if expected else -lit)
            assert solver.solve(assumptions) is True
            # ... and cannot equal depth+1.
            wrong = []
            for index, latch in enumerate(aig.latches):
                lit = unroller.lit_at(latch.lit, depth)
                expected = bool(((depth + 1) >> index) & 1)
                wrong.append(lit if expected else -lit)
            assert solver.solve(wrong) is False

    def test_bad_reachability_depth(self):
        # modular counter with bad value 5 is first bad at depth 5.
        case = modular_counter(3, modulus=8, bad_value=5)
        unroller = Unroller(case.aig)
        for depth in range(5):
            assert unroller.solver.solve([unroller.bad_lit_at(depth)]) is False
        assert unroller.solver.solve([unroller.bad_lit_at(5)]) is True

    def test_without_init_any_state_possible(self):
        unroller = Unroller(_counter_aig(), use_init=False)
        latch = unroller.aig.latches[0].lit
        assert unroller.solver.solve([unroller.lit_at(latch, 0)]) is True
        assert unroller.solver.solve([-unroller.lit_at(latch, 0)]) is True

    def test_inputs_are_free(self):
        case = combination_lock([1, 2], symbol_bits=2)
        unroller = Unroller(case.aig)
        sym0 = case.aig.inputs[0]
        assert unroller.solver.solve([unroller.lit_at(sym0, 0)]) is True
        assert unroller.solver.solve([-unroller.lit_at(sym0, 0)]) is True

    def test_constraints_enforced_every_frame(self):
        aig = AIG()
        free = aig.add_input()
        latch = aig.add_latch(init=0)
        aig.set_latch_next(latch, free)
        aig.add_bad(latch)
        aig.add_constraint(aig.negate(free))  # the input is forced low
        unroller = Unroller(aig)
        # With the constraint the latch can never become true.
        assert unroller.solver.solve([unroller.lit_at(latch, 3)]) is False


class TestModelExtraction:
    def test_latch_cube_and_inputs_at_frames(self):
        case = combination_lock([1, 3], symbol_bits=2)
        unroller = Unroller(case.aig)
        bad = unroller.bad_lit_at(2)
        assert unroller.solver.solve([bad]) is True
        model = unroller.solver.get_model()
        cube0 = unroller.latch_cube_at(model, 0)
        assert len(cube0) == case.aig.num_latches
        inputs0 = unroller.input_values_at(model, 0)
        inputs1 = unroller.input_values_at(model, 1)
        # The unlocking sequence is exactly the code: symbols 1 then 3.
        value0 = sum((1 << i) for i, lit in enumerate(case.aig.inputs) if inputs0[lit])
        value1 = sum((1 << i) for i, lit in enumerate(case.aig.inputs) if inputs1[lit])
        assert value0 == 1
        assert value1 == 3

    def test_shared_solver_can_be_supplied(self):
        solver = Solver()
        unroller = Unroller(_counter_aig(), solver=solver)
        assert unroller.solver is solver
        assert solver.solve() is True


class TestIncrementalReuse:
    """One persistent unrolling serves every bound (ISSUE 4 satellite)."""

    def test_literal_mappings_stable_across_solves_and_extensions(self):
        aig = _counter_aig(3)
        unroller = Unroller(aig)
        before = {
            (latch.lit, frame): unroller.lit_at(latch.lit, frame)
            for frame in range(3)
            for latch in aig.latches
        }
        assert unroller.solver.solve([unroller.bad_lit_at(2)]) in (True, False)
        # Extending to deeper frames after a SAT call must not disturb
        # any previously handed-out literal.
        unroller.lit_at(aig.latches[0].lit, 6)
        after = {
            (latch.lit, frame): unroller.lit_at(latch.lit, frame)
            for frame in range(3)
            for latch in aig.latches
        }
        assert before == after
        assert unroller.num_frames == 7

    def test_latch_cube_projection_consistent_across_bounds(self):
        # A mod-8 counter reaches value 7 exactly at depth 7; solving at
        # increasing bounds on the same unroller must keep earlier
        # frames' model projections consistent with simulation.
        aig = _counter_aig(3)
        unroller = Unroller(aig)
        assert not unroller.solver.solve([unroller.bad_lit_at(3)])
        assert unroller.solver.solve([unroller.bad_lit_at(7)])
        model = unroller.solver.get_model()
        for frame in range(8):
            cube = unroller.latch_cube_at(model, frame)
            value = 0
            for bit, latch in enumerate(aig.latches):
                lit = unroller.lit_at(latch.lit, frame)
                bit_true = model.get(abs(lit), False)
                if lit < 0:
                    bit_true = not bit_true
                value |= int(bit_true) << bit
            assert value == frame  # counter counts 0,1,2,...
            assert len(cube) == len(aig.latches)

    def test_frames_are_appended_never_reencoded(self):
        aig = _counter_aig(3)
        unroller = Unroller(aig)
        unroller.bad_lit_at(2)
        clauses_at_depth_2 = unroller.solver.num_clauses
        unroller.solver.solve([unroller.bad_lit_at(2)])
        unroller.bad_lit_at(4)
        grown = unroller.solver.num_clauses
        assert grown > clauses_at_depth_2
        # Re-requesting an old frame adds nothing.
        unroller.bad_lit_at(2)
        assert unroller.solver.num_clauses == grown


class TestInitAsAssumption:
    def test_init_guard_anchors_frame_zero_only_when_assumed(self):
        aig = _counter_aig(3)
        unroller = Unroller(aig, init_as_assumption=True)
        bad0 = unroller.bad_lit_at(0)
        # Without the init assumption frame 0 is unconstrained: the bad
        # value (7) is reachable "immediately".
        assert unroller.solver.solve([bad0])
        # With it, frame 0 is the reset state (0), which is not bad.
        assert not unroller.solver.solve(unroller.init_assumptions() + [bad0])

    def test_init_assumptions_usable_before_first_frame(self):
        # Regression: on a fresh unroller, init_assumptions() must build
        # frame 0 itself — left-to-right evaluation of
        # `solve(u.init_assumptions() + [u.bad_lit_at(0)])` calls it
        # before any frame exists.
        aig = _counter_aig(3)
        unroller = Unroller(aig, init_as_assumption=True)
        assumptions = unroller.init_assumptions()
        assert len(assumptions) == 1
        assert not unroller.solver.solve(assumptions + [unroller.bad_lit_at(0)])

    def test_init_assumptions_empty_without_the_mode(self):
        unroller = Unroller(_counter_aig(3))
        assert unroller.init_assumptions() == []
        unroller_no_init = Unroller(_counter_aig(3), use_init=False)
        assert unroller_no_init.init_assumptions() == []

    def test_base_and_step_queries_share_one_unrolling(self):
        # k-induction's two cases on one unroller: base (init assumed)
        # finds no counterexample at depth 1; step (no init) can still
        # place an arbitrary state at frame 0.
        aig = _counter_aig(3)
        unroller = Unroller(aig, init_as_assumption=True)
        bad1 = unroller.bad_lit_at(1)
        assert not unroller.solver.solve(unroller.init_assumptions() + [bad1])
        assert unroller.solver.solve([unroller.bad_lit_at(0)])
        num_vars = unroller.solver.num_vars
        # Both query families reused the same frames: no second encoding.
        assert unroller.num_frames == 2
        assert unroller.solver.num_vars == num_vars
