"""Tests for certificate and counterexample validation.

Both validators must accept genuine artefacts produced by the engines and,
just as importantly, reject doctored ones — otherwise they could not serve
as independent oracles.
"""

import pytest

from repro.benchgen import modular_counter, token_ring, fifo_controller
from repro.core import (
    IC3,
    BMC,
    CheckResult,
    Certificate,
    IC3Options,
    check_certificate,
    check_counterexample,
    CertificateError,
)
from repro.core.result import CounterexampleTrace, TraceStep
from repro.logic import Clause, Cube
from repro.ts import TransitionSystem


@pytest.fixture(scope="module")
def safe_run():
    case = token_ring(4)
    outcome = IC3(case.aig, IC3Options().with_prediction()).check(time_limit=60)
    assert outcome.result == CheckResult.SAFE
    return case, outcome


@pytest.fixture(scope="module")
def unsafe_run():
    case = modular_counter(3, modulus=8, bad_value=4)
    outcome = IC3(case.aig, IC3Options().with_prediction()).check(time_limit=60)
    assert outcome.result == CheckResult.UNSAFE
    return case, outcome


class TestCertificateValidation:
    def test_genuine_certificate_accepted(self, safe_run):
        case, outcome = safe_run
        assert check_certificate(case.aig, outcome.certificate)

    def test_accepts_transition_system_argument(self, safe_run):
        case, outcome = safe_run
        ts = TransitionSystem(case.aig)
        assert check_certificate(ts, outcome.certificate)

    def test_rejects_clause_violating_initiation(self, safe_run):
        case, outcome = safe_run
        ts = TransitionSystem(case.aig)
        # "token0 is low" is false in the initial state.
        broken = Certificate(
            clauses=list(outcome.certificate.clauses) + [Clause([-ts.latch_vars[0]])]
        )
        with pytest.raises(CertificateError):
            check_certificate(case.aig, broken)

    def test_rejects_certificate_that_allows_bad_states(self, safe_run):
        case, _ = safe_run
        # The empty clause set does not rule out the two-token bad states.
        with pytest.raises(CertificateError):
            check_certificate(case.aig, Certificate(clauses=[]))

    def test_rejects_non_inductive_clause_set(self):
        case = modular_counter(3, modulus=6, bad_value=7)
        ts = TransitionSystem(case.aig)
        # "counter < 4" rules out the bad value 7 and holds initially, but is
        # not inductive on its own (the counter does reach 4 and 5).
        clauses = [Clause([-ts.latch_vars[2]])]
        with pytest.raises(CertificateError):
            check_certificate(case.aig, Certificate(clauses=clauses))

    def test_accepts_hand_built_invariant(self):
        # For the 2-bit FIFO controller, "count <= 2" is inductive: the
        # clause ¬(count0 ∧ count1) excludes 3 and the counter saturates.
        case = fifo_controller(2)
        ts = TransitionSystem(case.aig)
        certificate = Certificate(
            clauses=[Clause([-ts.latch_vars[0], -ts.latch_vars[1]])]
        )
        assert check_certificate(case.aig, certificate)


class TestCounterexampleValidation:
    def test_genuine_trace_accepted(self, unsafe_run):
        case, outcome = unsafe_run
        assert check_counterexample(case.aig, outcome.trace)

    def test_bmc_trace_accepted(self):
        case = modular_counter(3, modulus=8, bad_value=3)
        outcome = BMC(case.aig).check(max_depth=10)
        assert check_counterexample(case.aig, outcome.trace)

    def test_rejects_empty_trace(self, unsafe_run):
        case, _ = unsafe_run
        with pytest.raises(CertificateError):
            check_counterexample(case.aig, CounterexampleTrace(steps=[]))

    def test_rejects_trace_not_starting_in_init(self, unsafe_run):
        case, outcome = unsafe_run
        ts = TransitionSystem(case.aig)
        bogus_first = TraceStep(state=Cube([ts.latch_vars[0]]), inputs={})
        trace = CounterexampleTrace(steps=[bogus_first] + outcome.trace.steps[1:])
        with pytest.raises(CertificateError):
            check_counterexample(case.aig, trace)

    def test_rejects_truncated_trace(self, unsafe_run):
        case, outcome = unsafe_run
        trace = CounterexampleTrace(steps=outcome.trace.steps[:-1])
        with pytest.raises(CertificateError):
            check_counterexample(case.aig, trace)

    def test_rejects_trace_with_corrupted_state(self, unsafe_run):
        case, outcome = unsafe_run
        steps = list(outcome.trace.steps)
        # Flip every latch literal of the last state.
        final = steps[-1]
        steps[-1] = TraceStep(
            state=Cube([-l for l in final.state]), inputs=final.inputs
        )
        if len(steps) < 2:
            pytest.skip("trace too short to corrupt meaningfully")
        with pytest.raises(CertificateError):
            check_counterexample(case.aig, CounterexampleTrace(steps=steps))
