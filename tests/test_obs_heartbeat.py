"""Unit tests of the heartbeat channel (``repro.obs.heartbeat``)."""

import io
import json
import os
import time

import pytest

from repro.obs.heartbeat import (
    HEARTBEAT_DIR_ENV,
    NULL_HEARTBEAT,
    Heartbeat,
    HeartbeatMonitor,
    LiveStatus,
    NullHeartbeat,
    format_progress,
    get_heartbeat,
    heartbeat_path,
    heartbeat_session,
    install_heartbeat,
    maybe_install_worker_heartbeat,
    shutdown_worker_heartbeat,
    uninstall_heartbeat,
)


@pytest.fixture(autouse=True)
def _clean_heartbeat_state(monkeypatch):
    """Every test starts and ends with heartbeats disabled."""
    monkeypatch.delenv(HEARTBEAT_DIR_ENV, raising=False)
    uninstall_heartbeat()
    yield
    uninstall_heartbeat()


class TestDisabledHeartbeat:
    def test_default_is_null_heartbeat(self):
        assert get_heartbeat() is NULL_HEARTBEAT
        assert get_heartbeat().enabled is False

    def test_disabled_operations_record_nothing(self):
        """The overhead guard: a disabled heartbeat allocates nothing."""
        heartbeat = get_heartbeat()
        heartbeat.update(frame=9, lemmas=120)
        heartbeat.reset(case="token_ring")
        assert heartbeat.snapshot() == {}
        heartbeat.close()

    def test_null_heartbeat_has_no_instance_dict(self):
        """__slots__ keeps the null object allocation-free per call."""
        assert not hasattr(NullHeartbeat(), "__dict__")

    def test_install_uninstall_round_trip(self):
        heartbeat = Heartbeat(role="test")
        install_heartbeat(heartbeat)
        assert get_heartbeat() is heartbeat
        assert uninstall_heartbeat() is heartbeat
        assert get_heartbeat() is NULL_HEARTBEAT


class TestHeartbeatRecord:
    def test_update_merges_and_reset_replaces(self):
        heartbeat = Heartbeat(role="engine")
        heartbeat.update(engine="ic3-pl", frame=2)
        heartbeat.update(frame=3, lemmas=40)
        record = heartbeat.snapshot()
        assert record["progress"] == {"engine": "ic3-pl", "frame": 3, "lemmas": 40}
        heartbeat.reset(case="next")
        assert heartbeat.snapshot()["progress"] == {"case": "next"}

    def test_snapshot_carries_identity_and_clock(self):
        record = Heartbeat(role="serve").snapshot()
        assert record["role"] == "serve"
        assert record["pid"] == os.getpid()
        assert record["seq"] == 0
        assert record["time_mono"] <= time.monotonic()
        # /proc sampling works on the CI hosts (Linux).
        assert record.get("rss_kb", 0) > 0

    def test_publish_writes_atomic_json_and_advances_seq(self, tmp_path):
        path = str(tmp_path / "hb-test-1.json")
        heartbeat = Heartbeat(role="test")
        heartbeat.path = path  # no publisher thread: publish manually
        heartbeat.update(frame=5)
        heartbeat.publish()
        heartbeat.publish()
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["progress"] == {"frame": 5}
        assert record["seq"] == 1  # second write saw the first's bump
        # mkstemp debris must not linger after the atomic rename.
        assert os.listdir(str(tmp_path)) == ["hb-test-1.json"]

    def test_publisher_thread_beats_without_updates(self, tmp_path):
        """Seq advancing with no field changes is the liveness signal."""
        path = heartbeat_path(str(tmp_path), "test")
        heartbeat = Heartbeat(role="test", path=path, interval=0.02)
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                with open(path, "r", encoding="utf-8") as handle:
                    if json.load(handle)["seq"] >= 3:
                        break
                time.sleep(0.02)
            else:
                pytest.fail("publisher thread never advanced the sequence")
        finally:
            heartbeat.close()


class TestWorkerActivation:
    def test_no_env_installs_nothing(self):
        assert maybe_install_worker_heartbeat("worker") is None
        assert get_heartbeat() is NULL_HEARTBEAT

    def test_env_installs_publishing_heartbeat(self, tmp_path, monkeypatch):
        monkeypatch.setenv(HEARTBEAT_DIR_ENV, str(tmp_path))
        heartbeat = maybe_install_worker_heartbeat("worker", interval=0.05)
        assert heartbeat is not None and get_heartbeat() is heartbeat
        heartbeat.update(frame=7)
        shutdown_worker_heartbeat()
        assert get_heartbeat() is NULL_HEARTBEAT
        record = HeartbeatMonitor(str(tmp_path)).latest_for(os.getpid())
        assert record is not None and record["progress"] == {"frame": 7}

    def test_heartbeat_session_exports_and_restores_env(self):
        assert HEARTBEAT_DIR_ENV not in os.environ
        with heartbeat_session() as monitor:
            assert os.environ[HEARTBEAT_DIR_ENV] == monitor.directory
            assert os.path.isdir(monitor.directory)
            workdir = monitor.directory
        assert HEARTBEAT_DIR_ENV not in os.environ
        assert not os.path.exists(workdir)


class TestMonitor:
    def test_missing_directory_reads_empty(self, tmp_path):
        assert HeartbeatMonitor(str(tmp_path / "nope")).read_all() == []

    def test_reads_records_and_skips_debris(self, tmp_path):
        heartbeat = Heartbeat(role="a")
        heartbeat.path = heartbeat_path(str(tmp_path), "a")
        heartbeat.publish()
        # Debris a reader may race into: torn JSON and foreign files.
        (tmp_path / "hb-broken-2.json").write_text("{not json")
        (tmp_path / "unrelated.txt").write_text("x")
        records = HeartbeatMonitor(str(tmp_path)).read_all()
        assert [record["role"] for record in records] == ["a"]

    def test_age_and_stalled(self, tmp_path):
        monitor = HeartbeatMonitor(str(tmp_path))
        fresh = {"time_mono": time.monotonic()}
        assert monitor.age(fresh) < 1.0
        assert not monitor.stalled(fresh, limit=1.0)
        old = {"time_mono": time.monotonic() - 10.0}
        assert monitor.age(old) == pytest.approx(10.0, abs=1.0)
        assert monitor.stalled(old, limit=3.0)
        assert monitor.age({}) == float("inf")


class TestLiveStatus:
    def test_suppressed_when_stream_is_not_a_tty(self):
        stream = io.StringIO()  # isatty() is False
        status = LiveStatus(lambda: "line", stream=stream, interval=0.01)
        assert status.enabled is False
        with status:
            time.sleep(0.05)
        assert stream.getvalue() == ""  # output stays parseable

    def test_paints_carriage_return_lines_on_a_tty(self):
        class FakeTty(io.StringIO):
            def isatty(self):
                return True

        stream = FakeTty()
        lines = iter(["frame=1", "frame=2"])
        status = LiveStatus(
            lambda: next(lines, None), stream=stream, interval=0.01
        )
        assert status.enabled is True
        with status:
            deadline = time.monotonic() + 5.0
            while "frame=2" not in stream.getvalue():
                if time.monotonic() > deadline:
                    pytest.fail("status line never painted")
                time.sleep(0.01)
        text = stream.getvalue()
        assert "\rframe=1" in text and "\rframe=2" in text
        assert text.endswith("\r")  # erased on exit


class TestFormatProgress:
    def test_compact_key_value_line(self):
        record = {
            "progress": {
                "engine": "ic3-pl",
                "case": "token_ring_3",
                "frame": 12,
                "lemmas": 340,
                "members": {"bmc": "running", "ic3": "running"},
            },
            "rss_kb": 4096,
        }
        line = format_progress(record)
        assert line == (
            "ic3-pl case=token_ring_3 frame=12 lemmas=340 "
            "members[bmc:running,ic3:running] rss=4M"
        )

    def test_empty_record_is_idle(self):
        assert format_progress({}) == "idle"
