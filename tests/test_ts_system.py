"""Tests for the transition-system encoding.

The key property is that the CNF encoding agrees with circuit simulation:
a SAT model of ``state ∧ inputs ∧ T`` must assign the primed variables the
same values the simulator computes, and the bad literal must match the
simulated bad signal.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aiger import AIG
from repro.benchgen import token_ring, fifo_controller, modular_counter
from repro.logic import Clause, Cube
from repro.sat import Solver
from repro.ts import TransitionSystem, EncodingError


def _toggle_system():
    aig = AIG()
    enable = aig.add_input("enable")
    latch = aig.add_latch(init=0)
    aig.set_latch_next(latch, aig.xor_gate(latch, enable))
    aig.add_bad(latch)
    return aig, enable, latch


class TestEncodingBasics:
    def test_variable_partition(self):
        aig, _, _ = _toggle_system()
        ts = TransitionSystem(aig)
        assert len(ts.input_vars) == 1
        assert len(ts.latch_vars) == 1
        assert len(ts.next_state_variables) == 1
        assert set(ts.latch_vars).isdisjoint(ts.input_vars)
        assert set(ts.latch_vars).isdisjoint(ts.next_state_variables)

    def test_requires_bad_or_output(self):
        aig = AIG()
        latch = aig.add_latch()
        aig.set_latch_next(latch, latch)
        with pytest.raises(EncodingError):
            TransitionSystem(aig)

    def test_output_used_as_bad_when_no_bad_declared(self):
        aig = AIG()
        latch = aig.add_latch()
        aig.set_latch_next(latch, latch)
        aig.add_output(latch)
        ts = TransitionSystem(aig)
        assert ts.bad_lit in (ts.latch_vars[0], -ts.latch_vars[0])

    def test_property_index_out_of_range(self):
        aig, _, _ = _toggle_system()
        with pytest.raises(EncodingError):
            TransitionSystem(aig, property_index=3)

    def test_init_cube_respects_reset_values(self):
        aig = AIG()
        l0 = aig.add_latch(init=0)
        l1 = aig.add_latch(init=1)
        lx = aig.add_latch(init=None)
        for latch in (l0, l1, lx):
            aig.set_latch_next(latch, latch)
        aig.add_bad(l0)
        ts = TransitionSystem(aig)
        assert len(ts.init_cube) == 2  # the uninitialised latch is unconstrained
        values = {abs(l): l > 0 for l in ts.init_cube}
        assert values[ts.latch_vars[0]] is False
        assert values[ts.latch_vars[1]] is True

    def test_describe_mentions_counts(self):
        aig, _, _ = _toggle_system()
        assert "latches=1" in TransitionSystem(aig).describe()


class TestPriming:
    def test_prime_and_unprime_roundtrip(self):
        ts = TransitionSystem(token_ring(3).aig)
        for var in ts.latch_vars:
            assert ts.unprime_lit(ts.prime_lit(var)) == var
            assert ts.unprime_lit(ts.prime_lit(-var)) == -var

    def test_prime_cube(self):
        ts = TransitionSystem(token_ring(3).aig)
        cube = Cube([ts.latch_vars[0], -ts.latch_vars[1]])
        primed = ts.prime_cube(cube)
        assert ts.unprime_cube(primed) == cube

    def test_prime_non_latch_rejected(self):
        ts = TransitionSystem(token_ring(3).aig)
        with pytest.raises(EncodingError):
            ts.prime_lit(ts.input_vars[0]) if ts.input_vars else ts.prime_lit(10**6)

    def test_is_state_lit(self):
        ts = TransitionSystem(fifo_controller(2).aig)
        assert all(ts.is_state_lit(v) for v in ts.latch_vars)
        assert all(ts.is_state_lit(-v) for v in ts.latch_vars)
        assert not any(ts.is_state_lit(v) for v in ts.input_vars)


class TestInitReasoning:
    def test_cube_intersects_init(self):
        ts = TransitionSystem(token_ring(3).aig)
        # Initial state: token in stage 0 only.
        init_like = Cube([ts.latch_vars[0]])
        not_init = Cube([-ts.latch_vars[0]])
        assert ts.cube_intersects_init(init_like)
        assert not ts.cube_intersects_init(not_init)

    def test_empty_cube_intersects_init(self):
        ts = TransitionSystem(token_ring(3).aig)
        assert ts.cube_intersects_init(Cube())

    def test_clause_holds_on_init(self):
        ts = TransitionSystem(token_ring(3).aig)
        holds = Clause([ts.latch_vars[0]])          # token0 is 1 initially
        fails = Clause([ts.latch_vars[1]])          # token1 is 0 initially
        assert ts.clause_holds_on_init(holds)
        assert not ts.clause_holds_on_init(fails)

    def test_init_clauses_are_units(self):
        ts = TransitionSystem(fifo_controller(2).aig)
        assert all(len(c) == 1 for c in ts.init_clauses())
        assert len(ts.init_clauses()) == len(ts.init_cube)


class TestEncodingAgreesWithSimulation:
    def _solver_for(self, ts):
        solver = Solver()
        solver.ensure_var(ts.num_vars)
        for clause in ts.trans:
            solver.add_clause(clause.literals)
        return solver

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=7), st.booleans())
    def test_toggle_circuit_next_state(self, state_bits, enable):
        aig, enable_lit, latch_lit = _toggle_system()
        ts = TransitionSystem(aig)
        solver = self._solver_for(ts)
        latch_var = ts.latch_vars[0]
        input_var = ts.input_vars[0]
        current = bool(state_bits & 1)

        assumptions = [
            latch_var if current else -latch_var,
            input_var if enable else -input_var,
        ]
        assert solver.solve(assumptions)
        model = solver.get_model()
        primed_value = model[ts.primed_of[latch_var]]
        assert primed_value == (current ^ enable)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=3), st.booleans(), st.booleans())
    def test_fifo_counter_next_state_matches_simulation(self, count, push, pop):
        case = fifo_controller(2)
        ts = TransitionSystem(case.aig)
        solver = self._solver_for(ts)

        state_literals = []
        latch_values = {}
        for index, (latch, var) in enumerate(zip(case.aig.latches, ts.latch_vars)):
            value = bool((count >> index) & 1)
            latch_values[latch.lit] = value
            state_literals.append(var if value else -var)
        input_assignment = {case.aig.inputs[0]: push, case.aig.inputs[1]: pop}
        input_literals = [
            var if value else -var
            for var, value in zip(ts.input_vars, (push, pop))
        ]

        assert solver.solve(state_literals + input_literals)
        model = solver.get_model()

        # Reference: evaluate the circuit directly.
        values = case.aig._evaluate_combinational(input_assignment, latch_values)
        for latch, var in zip(case.aig.latches, ts.latch_vars):
            assert model[ts.primed_of[var]] == values[latch.next]
        assert (model.get(abs(ts.bad_lit), False) == (ts.bad_lit > 0)) == values[
            case.aig.bads[0]
        ]

    def test_bad_literal_matches_simulation_for_counter(self):
        case = modular_counter(3, modulus=6, bad_value=2)
        ts = TransitionSystem(case.aig)
        solver = self._solver_for(ts)
        # State "2" must satisfy the bad cone, state "1" must not.
        for value, expect_bad in [(2, True), (1, False)]:
            assumptions = []
            for index, var in enumerate(ts.latch_vars):
                bit = bool((value >> index) & 1)
                assumptions.append(var if bit else -var)
            assumptions.append(ts.bad_lit if expect_bad else -ts.bad_lit)
            assert solver.solve(assumptions)


class TestModelProjection:
    def test_state_and_input_cubes_from_model(self):
        case = token_ring(3)
        ts = TransitionSystem(case.aig)
        solver = Solver()
        solver.ensure_var(ts.num_vars)
        for clause in ts.trans:
            solver.add_clause(clause.literals)
        for lit in ts.init_cube:
            solver.add_clause([lit])
        assert solver.solve()
        model = solver.get_model()
        state = ts.state_cube_from_model(model)
        assert len(state) == len(ts.latch_vars)
        assert ts.cube_intersects_init(state)
        succ = ts.state_cube_from_model(model, primed=True)
        assert len(succ) == len(ts.latch_vars)
        assert all(abs(l) in ts.primed_of for l in succ)  # over current vars
