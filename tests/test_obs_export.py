"""Tests of trace export, validation, stitching and hotspot reports."""

import json

from repro.obs.export import (
    collect_worker_events,
    read_jsonl_events,
    read_trace,
    stitch,
    to_chrome_document,
    validate_chrome_trace,
    validate_trace_file,
    wall_span_us,
    write_chrome_trace,
)
from repro.obs.report import format_report, hotspots, phase_totals
from repro.obs.tracer import Tracer, install, uninstall


def _x(name, ts, dur, cat="test", pid=1, tid=1):
    return {
        "name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
        "pid": pid, "tid": tid, "args": {},
    }


def _i(name, ts, cat="test", pid=1, tid=1):
    return {
        "name": name, "cat": cat, "ph": "i", "ts": ts, "s": "t",
        "pid": pid, "tid": tid, "args": {},
    }


class TestChromeExport:
    def test_real_tracer_output_passes_validation(self):
        tracer = install(Tracer())
        try:
            with tracer.span("outer", cat="a"):
                with tracer.span("inner", cat="b", n=1):
                    tracer.instant("tick", cat="b")
                tracer.sample("counter", 5000, cat="a")
            document = to_chrome_document(tracer.events())
        finally:
            uninstall()
        assert validate_chrome_trace(document) == []
        assert document["displayTimeUnit"] == "ms"
        assert [e["name"] for e in document["traceEvents"]][0] == "outer"

    def test_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "t.json")
        events = [_x("a", 10, 5), _i("b", 12)]
        write_chrome_trace(path, events)
        assert read_trace(path) == to_chrome_document(events)["traceEvents"]
        assert validate_trace_file(path) == []

    def test_validation_catches_malformed_events(self):
        document = {
            "traceEvents": [
                {"ph": "X", "ts": 1, "pid": 1, "tid": 1},  # no name, no dur
                {"name": "x", "ph": "Z", "ts": 1, "pid": 1, "tid": 1},
                {"name": "y", "ph": "X", "ts": 1, "dur": -5, "pid": 1, "tid": 1},
                "not-an-object",
            ]
        }
        problems = validate_chrome_trace(document)
        assert any("missing required key 'name'" in p for p in problems)
        assert any("lacks dur" in p for p in problems)
        assert any("unknown phase 'Z'" in p for p in problems)
        assert any("negative dur" in p for p in problems)
        assert any("not an object" in p for p in problems)

    def test_non_document_inputs_rejected(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"events": []}) != []


class TestJsonlIngestion:
    def test_truncated_last_line_tolerated(self, tmp_path):
        path = tmp_path / "killed.jsonl"
        good = json.dumps(_x("done", 1, 2))
        path.write_text(good + "\n" + json.dumps(_x("cut", 3, 4))[:17])
        events = read_jsonl_events(str(path))
        assert [e["name"] for e in events] == ["done"]

    def test_missing_file_is_empty(self, tmp_path):
        assert read_jsonl_events(str(tmp_path / "absent.jsonl")) == []

    def test_read_trace_detects_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps(_i("only", 1)) + "\n")
        assert [e["name"] for e in read_trace(str(path))] == ["only"]


class TestWorkerCollection:
    def test_flight_dump_used_only_without_sink(self, tmp_path):
        # Worker 111: clean exit, sink present, flight must be skipped.
        (tmp_path / "role-111.jsonl").write_text(json.dumps(_i("clean", 1)) + "\n")
        (tmp_path / "flight-role-111.jsonl").write_text(
            json.dumps(_i("dup", 1)) + "\n"
        )
        # Worker 222: SIGKILLed before its sink appeared; flight survives.
        (tmp_path / "flight-role-222.jsonl").write_text(
            json.dumps(_i("postmortem", 2)) + "\n"
        )
        names = sorted(e["name"] for e in collect_worker_events(str(tmp_path)))
        assert names == ["clean", "postmortem"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert collect_worker_events(str(tmp_path / "nope")) == []

    def test_stitch_orders_across_processes(self):
        timeline = stitch([[_x("b", 20, 1, pid=2)], [_x("a", 10, 1, pid=1)]])
        assert [e["name"] for e in timeline] == ["a", "b"]


class TestHotspots:
    def test_self_time_subtracts_nested_children(self):
        # outer [0, 100) contains inner [10, 40) contains leaf [20, 25).
        events = [
            _x("outer", 0, 100, cat="a"),
            _x("inner", 10, 30, cat="b"),
            _x("leaf", 20, 5, cat="c"),
        ]
        rows = {row.phase: row for row in hotspots(events)}
        assert rows["a"].self_us == 70.0  # 100 - 30
        assert rows["b"].self_us == 25.0  # 30 - 5
        assert rows["c"].self_us == 5.0
        assert sum(row.self_us for row in rows.values()) == 100.0

    def test_siblings_are_not_treated_as_nested(self):
        events = [_x("a", 0, 10, cat="a"), _x("b", 10, 10, cat="b")]
        rows = {row.phase: row for row in hotspots(events)}
        assert rows["a"].self_us == 10.0
        assert rows["b"].self_us == 10.0

    def test_tracks_are_independent(self):
        # Same timestamps on different threads must not nest.
        events = [_x("a", 0, 100, tid=1, cat="a"), _x("b", 10, 30, tid=2, cat="b")]
        rows = {row.phase: row for row in hotspots(events)}
        assert rows["a"].self_us == 100.0
        assert rows["b"].self_us == 30.0

    def test_instants_counted_per_phase(self):
        rows = {r.phase: r for r in hotspots([_i("t", 5, cat="sat")] * 3)}
        assert rows["sat"].instants == 3
        assert rows["sat"].spans == 0

    def test_phase_totals_in_seconds(self):
        totals = phase_totals([_x("a", 0, 2_000_000, cat="sat")])
        assert totals == {"sat": 2.0}

    def test_format_report_renders_all_phases(self):
        report = format_report(
            [_x("a", 0, 100, cat="ic3"), _x("b", 10, 20, cat="sat"), _i("c", 5, cat="sat")]
        )
        assert "ic3" in report and "sat" in report
        assert "wall clock" in report

    def test_wall_span(self):
        assert wall_span_us([_x("a", 10, 30), _x("b", 25, 5)]) == 30.0
        assert wall_span_us([]) is None
