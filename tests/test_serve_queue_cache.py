"""Tests for the service admission primitives: queue, budgets, cache."""

import pytest

from repro.serve.cache import ResultCache
from repro.serve.jobqueue import (
    BudgetExceeded,
    JobQueue,
    QueueFull,
    TenantBudgets,
    TokenBucket,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestJobQueue:
    def test_priority_order_then_fifo(self):
        queue = JobQueue(maxsize=8)
        queue.put("low-a", 5)
        queue.put("high", 0)
        queue.put("low-b", 5)
        queue.put("mid", 2)
        assert [queue.get() for _ in range(4)] == ["high", "mid", "low-a", "low-b"]

    def test_get_empty_returns_none(self):
        assert JobQueue(maxsize=2).get(timeout=0) is None

    def test_bounded(self):
        queue = JobQueue(maxsize=2)
        queue.put("a")
        queue.put("b")
        with pytest.raises(QueueFull) as excinfo:
            queue.put("c", retry_after=7.0)
        assert excinfo.value.retry_after == 7.0
        # A slot freed by get() admits again.
        assert queue.get() == "a"
        queue.put("c")
        assert len(queue) == 2

    def test_drain_returns_priority_order_and_empties(self):
        queue = JobQueue(maxsize=4)
        queue.put("b", 1)
        queue.put("a", 0)
        assert queue.drain() == ["a", "b"]
        assert len(queue) == 0

    def test_rejects_nonpositive_depth(self):
        with pytest.raises(ValueError):
            JobQueue(maxsize=0)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is None
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)
        clock.advance(0.5)
        assert bucket.try_acquire() == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.try_acquire() is None

    def test_tokens_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == 3.0


class TestTenantBudgets:
    def test_budgets_are_per_tenant(self):
        clock = FakeClock()
        budgets = TenantBudgets(rate=1.0, burst=1.0, clock=clock)
        budgets.admit("alice")
        with pytest.raises(BudgetExceeded) as excinfo:
            budgets.admit("alice")
        assert excinfo.value.tenant == "alice"
        assert excinfo.value.retry_after == pytest.approx(1.0)
        budgets.admit("bob")  # a fresh tenant has its own bucket

    def test_refill_readmits(self):
        clock = FakeClock()
        budgets = TenantBudgets(rate=2.0, burst=1.0, clock=clock)
        budgets.admit("alice")
        clock.advance(0.5)
        budgets.admit("alice")

    def test_snapshot(self):
        clock = FakeClock()
        budgets = TenantBudgets(rate=1.0, burst=4.0, clock=clock)
        budgets.admit("alice")
        assert budgets.snapshot() == {"alice": 3.0}


def solved(result="safe", **extra):
    record = {"result": result, "error": None, "runtime": 0.1}
    record.update(extra)
    return record


class TestResultCache:
    def test_round_trip(self):
        cache = ResultCache(max_entries=4)
        assert cache.put("k", solved()) is True
        assert cache.get("k")["result"] == "safe"

    def test_only_solved_verdicts_cached(self):
        cache = ResultCache(max_entries=4)
        assert cache.put("u", solved(result="unknown")) is False
        assert cache.put("e", solved(result="safe", error="boom")) is False
        assert cache.get("u") is None
        assert cache.get("e") is None
        assert cache.put("s", solved(result="unsafe")) is True

    def test_lru_eviction_and_refresh(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", solved())
        cache.put("b", solved())
        cache.get("a")  # refresh "a" so "b" is the LRU victim
        cache.put("c", solved())
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_returns_private_copies(self):
        cache = ResultCache(max_entries=2)
        original = solved(witness={"steps": [1, 2]})
        cache.put("k", original)
        original["witness"]["steps"].append(3)
        first = cache.get("k")
        first["witness"]["steps"].append(4)
        assert cache.get("k")["witness"]["steps"] == [1, 2]

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
