"""Cooperative lemma exchange: soundness under a hostile bus.

The exchange layer's contract is that the bus is *untrusted*: every
foreign record is revalidated locally before installation, so malformed,
out-of-range, non-inductive or mislevelled records may waste a SAT call
but can never change a verdict.  These tests inject exactly such records
— parametrized over both SAT kernels and both frame backends — and
assert verdict preservation, witness validity and the rejection
counters.  The positive path (a published lemma imported and installed
by another member) is covered in-process with two engines sharing one
ring.
"""

import pytest

from repro.aiger.aig import AIG
from repro.benchgen import modular_counter, token_ring
from repro.core.bmc import BMC
from repro.core.ic3 import IC3
from repro.core.invariant import check_certificate
from repro.core.kinduction import KInduction
from repro.core.options import IC3Options
from repro.core.result import CheckResult
from repro.engines.lembus import SharePolicy, ShmRingBus

SAT_BACKENDS = ["default", "arena"]
FRAME_BACKENDS = ["monolithic", "per-frame"]


def _open_bus(min_level=0, max_lits=16):
    """A small ring whose policy lets hostile low-level records through."""
    return ShmRingBus(
        capacity=1 << 16, policy=SharePolicy(max_lits=max_lits, min_level=min_level)
    )


def _publish_hostile(port, num_latches):
    """Flood the port with records the importers must reject."""
    published = 0
    for index in range(num_latches):
        # Unit clauses of both polarities: for every latch at least one
        # of the pair fails the init check (or is plain wrong).
        published += port.publish(3, [index + 1])
        published += port.publish(3, [-(index + 1)])
    published += port.publish(3, [num_latches + 99])     # out of range
    published += port.publish(3, [-(num_latches + 42)])  # out of range
    published += port.publish(3, [0])                    # malformed literal
    published += port.publish(0, [-1])                   # level <= 0
    published += port.publish(-7, [-1, -2])              # negative level
    return published


def _stuck_flag_counter(modulus=None, bad_value=5):
    """A 3-bit counter plus a stuck-at-zero flag latch.

    The flag holds its reset value forever, so the latch-index clause
    ``[-4]`` ("flag is 0") is a true global invariant — the one record a
    sound importer must accept.  ``modulus=None`` lets the counter run
    free (UNSAFE for any ``bad_value``); with a modulus, values at or
    above it are unreachable (SAFE).
    """
    from repro.aiger.aig import FALSE_LIT

    aig = AIG(comment="stuck-flag counter")
    bits = [aig.add_latch(init=0, name=f"cnt{i}") for i in range(3)]
    incremented = aig.increment(bits)
    if modulus is None:
        for bit, inc in zip(bits, incremented):
            aig.set_latch_next(bit, inc)
    else:
        wrap = aig.equal_const(bits, modulus - 1)
        for bit, inc in zip(bits, incremented):
            aig.set_latch_next(bit, aig.mux(wrap, FALSE_LIT, inc))
    flag = aig.add_latch(init=0, name="stuck")
    aig.set_latch_next(flag, flag)
    aig.add_bad(aig.equal_const(bits, bad_value))
    return aig


@pytest.mark.parametrize("sat_backend", SAT_BACKENDS)
@pytest.mark.parametrize("frame_backend", FRAME_BACKENDS)
class TestIC3HostileBus:
    def test_safe_verdict_survives_poisoned_bus(self, sat_backend, frame_backend):
        case = token_ring(3)
        options = IC3Options(frame_backend=frame_backend, sat_backend=sat_backend)
        baseline = IC3(case.aig, options).check(time_limit=60)
        assert baseline.result == CheckResult.SAFE

        bus = _open_bus()
        try:
            victim_port = bus.open_local_port(0)
            attacker = bus.open_local_port(1)
            _publish_hostile(attacker, num_latches=len(case.aig.latches))
            engine = IC3(case.aig, options, lemma_port=victim_port)
            outcome = engine.check(time_limit=60)
        finally:
            bus.close()
            bus.unlink()

        assert outcome.result == baseline.result == CheckResult.SAFE
        assert check_certificate(case.aig, outcome.certificate)
        assert engine.stats.lemmas_received > 0
        assert engine.stats.lemmas_rejected > 0
        # Anything the validator did accept was proven locally, so the
        # certificate above already vouches for it.
        assert engine.stats.lemmas_imported <= engine.stats.lemmas_validated

    def test_unsafe_verdict_survives_masking_attempt(self, sat_backend, frame_backend):
        case = modular_counter(3, modulus=6, bad_value=3)
        assert case.expected == CheckResult.UNSAFE
        options = IC3Options(frame_backend=frame_backend, sat_backend=sat_backend)

        bus = _open_bus()
        try:
            victim_port = bus.open_local_port(0)
            attacker = bus.open_local_port(1)
            # Try to "block" the bad state with bogus high-level lemmas.
            _publish_hostile(attacker, num_latches=len(case.aig.latches))
            attacker.publish(50, [-1, -2])  # claims value 3 unreachable
            engine = IC3(case.aig, options, lemma_port=victim_port)
            outcome = engine.check(time_limit=60)
        finally:
            bus.close()
            bus.unlink()

        assert outcome.result == CheckResult.UNSAFE
        assert outcome.trace is not None
        assert outcome.trace.depth == case.expected_depth


@pytest.mark.parametrize("sat_backend", SAT_BACKENDS)
class TestIC3ImportAcceptPath:
    def test_true_invariant_accepted_despite_absurd_level(self, sat_backend):
        aig = _stuck_flag_counter(modulus=6, bad_value=7)
        bus = _open_bus()
        try:
            victim_port = bus.open_local_port(0)
            attacker = bus.open_local_port(1)
            # True invariant ("stuck flag is 0") advertised at a level far
            # beyond anything the member has: the level is clamped and the
            # clause revalidated, so it still imports.
            attacker.publish(999, [-4])
            engine = IC3(
                aig, IC3Options(sat_backend=sat_backend), lemma_port=victim_port
            )
            outcome = engine.check(time_limit=60)
        finally:
            bus.close()
            bus.unlink()
        assert outcome.result == CheckResult.SAFE
        assert check_certificate(aig, outcome.certificate)
        assert engine.stats.lemmas_validated >= 1
        assert engine.stats.lemmas_imported >= 1
        assert engine.stats.lemmas_rejected == 0

    def test_two_members_exchange_lemmas_in_process(self, sat_backend):
        case = modular_counter(3, modulus=6, bad_value=7)
        bus = ShmRingBus(
            capacity=1 << 16, policy=SharePolicy(max_lits=8, min_level=1)
        )
        try:
            port_a = bus.open_local_port(0)
            port_b = bus.open_local_port(1)  # opened first: sees a's records
            options = IC3Options(sat_backend=sat_backend)
            engine_a = IC3(case.aig, options, lemma_port=port_a)
            outcome_a = engine_a.check(time_limit=60)
            assert outcome_a.result == CheckResult.SAFE
            assert engine_a.stats.lemmas_published > 0

            engine_b = IC3(
                case.aig, options.with_prediction(), lemma_port=port_b
            )
            outcome_b = engine_b.check(time_limit=60)
        finally:
            bus.close()
            bus.unlink()

        assert outcome_b.result == CheckResult.SAFE
        assert check_certificate(case.aig, outcome_b.certificate)
        assert engine_b.stats.lemmas_received > 0
        assert engine_b.stats.lemmas_validated > 0
        assert engine_b.stats.lemmas_imported > 0


@pytest.mark.parametrize("sat_backend", SAT_BACKENDS)
class TestUnrollingImporter:
    def test_bmc_rejects_hostile_still_finds_cex(self, sat_backend):
        aig = _stuck_flag_counter(modulus=None, bad_value=5)
        bus = _open_bus()
        try:
            victim_port = bus.open_local_port(0)
            attacker = bus.open_local_port(1)
            _publish_hostile(attacker, num_latches=len(aig.latches))
            # A clause that would mask the counterexample if trusted.
            attacker.publish(10, [-1, -2])
            engine = BMC(aig, sat_backend=sat_backend, lemma_port=victim_port)
            outcome = engine.check(max_depth=10, time_limit=60)
        finally:
            bus.close()
            bus.unlink()
        assert outcome.result == CheckResult.UNSAFE
        assert outcome.trace is not None and outcome.trace.depth == 5
        assert engine.stats.lemmas_received > 0
        assert engine.stats.lemmas_rejected > 0

    def test_bmc_accepts_global_invariant(self, sat_backend):
        aig = _stuck_flag_counter(modulus=None, bad_value=5)
        bus = _open_bus()
        try:
            victim_port = bus.open_local_port(0)
            attacker = bus.open_local_port(1)
            attacker.publish(3, [-4])  # stuck flag stays 0: true invariant
            engine = BMC(aig, sat_backend=sat_backend, lemma_port=victim_port)
            outcome = engine.check(max_depth=10, time_limit=60)
        finally:
            bus.close()
            bus.unlink()
        assert outcome.result == CheckResult.UNSAFE  # invariant masks nothing
        assert outcome.trace is not None and outcome.trace.depth == 5
        assert engine.stats.lemmas_validated == 1
        assert engine.stats.lemmas_imported == 1

    def test_kinduction_hostile_bus_keeps_safe_verdict(self, sat_backend):
        aig = _stuck_flag_counter(modulus=6, bad_value=7)
        baseline = KInduction(aig, sat_backend=sat_backend).check(
            max_k=20, time_limit=60
        )
        bus = _open_bus()
        try:
            victim_port = bus.open_local_port(0)
            attacker = bus.open_local_port(1)
            _publish_hostile(attacker, num_latches=len(aig.latches))
            attacker.publish(3, [-4])  # one true invariant in the noise
            engine = KInduction(aig, sat_backend=sat_backend, lemma_port=victim_port)
            outcome = engine.check(max_k=20, time_limit=60)
        finally:
            bus.close()
            bus.unlink()
        assert baseline.result == outcome.result == CheckResult.SAFE
        assert engine.stats.lemmas_rejected > 0
        assert engine.stats.lemmas_imported >= 1
