"""The liveness benchmark families: structure and ground truth."""

import pytest

from repro.benchgen.liveness import (
    arbiter_live,
    handshake_live,
    mixed_properties,
    token_ring_live,
)
from repro.benchgen.suite import liveness_suite
from repro.core.result import CheckResult
from repro.props import enumerate_obligations

pytestmark = pytest.mark.liveness


class TestFamilies:
    @pytest.mark.parametrize("safe", [True, False])
    def test_token_ring_declares_one_justice_property(self, safe):
        case = token_ring_live(3, safe=safe)
        case.aig.validate()
        assert len(case.aig.justice) == 1
        assert case.aig.bads == []
        assert case.expected == (CheckResult.SAFE if safe else CheckResult.UNSAFE)

    def test_arbiter_has_fairness(self):
        case = arbiter_live(3, safe=True)
        assert len(case.aig.fairness) == 1
        assert len(case.aig.justice) == 1

    def test_handshake_cycles_through_done(self):
        case = handshake_live(safe=True)
        s0, s1 = case.aig.latches[0].lit, case.aig.latches[1].lit
        records = case.aig.simulate([{} for _ in range(8)])
        done_steps = [
            index
            for index, record in enumerate(records)
            if record["latches"][s0] and record["latches"][s1]
        ]
        assert done_steps == [3, 7]  # IDLE->REQ->ACK->DONE, period 4

    def test_buggy_handshake_can_livelock(self):
        case = handshake_live(safe=False)
        retry = case.aig.inputs[0]
        s0, s1 = case.aig.latches[0].lit, case.aig.latches[1].lit
        records = case.aig.simulate([{retry: True} for _ in range(8)])
        # With retry held high DONE (11) is never reached.
        assert not any(
            record["latches"][s0] and record["latches"][s1] for record in records
        )

    def test_mixed_properties_shape(self):
        case = mixed_properties(3)
        obligations = enumerate_obligations(case.aig)
        assert [ob.kind for ob in obligations] == ["bad", "bad", "justice"]
        assert case.expected_properties == [
            CheckResult.SAFE,
            CheckResult.UNSAFE,
            CheckResult.SAFE,
        ]
        assert case.expected == CheckResult.UNSAFE

    def test_monitor_constraint_is_vacuous_before_jump(self):
        # With jump held low the monitor never restricts the circuit.
        case = token_ring_live(3, safe=True)
        records = case.aig.simulate([{} for _ in range(9)])
        for record in records:
            assert all(record["constraints"])

    def test_size_validation(self):
        with pytest.raises(ValueError):
            token_ring_live(1)
        with pytest.raises(ValueError):
            arbiter_live(1)
        with pytest.raises(ValueError):
            mixed_properties(1)


class TestSuite:
    def test_unique_names_and_expectations(self):
        cases = liveness_suite()
        names = [case.name for case in cases]
        assert len(names) == len(set(names))
        for case in cases:
            assert case.expected is not None
            assert case.expected_properties is not None
            obligations = enumerate_obligations(case.aig)
            assert len(obligations) == len(case.expected_properties)

    def test_suite_mixes_safe_and_buggy(self):
        cases = liveness_suite()
        expected = {case.expected for case in cases}
        assert expected == {CheckResult.SAFE, CheckResult.UNSAFE}

    def test_roundtrips_through_aiger(self):
        from repro.aiger.parser import parse_aiger
        from repro.aiger.writer import to_aag_string, to_aig_bytes

        for case in liveness_suite():
            ascii_again = parse_aiger(to_aag_string(case.aig))
            binary_again = parse_aiger(to_aig_bytes(case.aig))
            assert len(ascii_again.justice) == len(case.aig.justice)
            assert len(binary_again.justice) == len(case.aig.justice)
            assert len(ascii_again.fairness) == len(case.aig.fairness)
            assert len(binary_again.fairness) == len(case.aig.fairness)
