"""Unit tests of the tracing core (``repro.obs.tracer``)."""

import json
import os
import threading

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_DIR_ENV,
    JsonlSink,
    NullTracer,
    Tracer,
    get_tracer,
    install,
    maybe_install_worker_tracer,
    shutdown_worker_tracer,
    trace_session,
    uninstall,
)


@pytest.fixture(autouse=True)
def _clean_tracer_state(monkeypatch):
    """Every test starts and ends with tracing disabled."""
    monkeypatch.delenv(TRACE_DIR_ENV, raising=False)
    uninstall()
    yield
    uninstall()


class TestDisabledTracer:
    def test_default_is_null_tracer(self):
        assert get_tracer() is NULL_TRACER
        assert get_tracer().enabled is False

    def test_disabled_span_is_one_shared_object(self):
        """The overhead guard: a disabled span allocates nothing."""
        tracer = get_tracer()
        spans = {id(tracer.span(f"s{i}", cat="x", arg=i)) for i in range(100)}
        assert len(spans) == 1  # one preallocated null span, reused

    def test_disabled_operations_record_nothing(self):
        tracer = get_tracer()
        with tracer.span("a"):
            tracer.instant("b")
            tracer.sample("c", 10_000_000)
        assert tracer.events() == []

    def test_null_tracer_has_no_instance_dict(self):
        """__slots__ keeps the null object allocation-free per call."""
        assert not hasattr(NullTracer(), "__dict__")

    def test_install_uninstall_round_trip(self):
        tracer = Tracer()
        install(tracer)
        assert get_tracer() is tracer
        assert uninstall() is tracer
        assert get_tracer() is NULL_TRACER


class TestSpans:
    def test_span_records_complete_event(self):
        tracer = install(Tracer())
        with tracer.span("work", cat="test", size=3) as span:
            span.add(result="ok")
        (event,) = tracer.events()
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["cat"] == "test"
        assert event["dur"] >= 0
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_native_id()
        assert event["args"] == {"size": 3, "result": "ok"}

    def test_span_marks_aborted_on_exception(self):
        tracer = install(Tracer())
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (event,) = tracer.events()
        assert event["args"]["aborted"] is True

    def test_nesting_preserves_start_order_per_thread(self):
        tracer = install(Tracer())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events()  # inner closes (and records) first
        assert inner["name"] == "inner"
        assert outer["name"] == "outer"
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_thread_safety_under_concurrent_spans(self):
        tracer = install(Tracer())
        errors = []

        def worker(tag):
            try:
                for i in range(200):
                    with tracer.span(f"{tag}-{i}", cat="thread"):
                        tracer.instant(f"{tag}-i{i}")
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(f"t{n}",)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        events = tracer.events()
        assert len(events) == 4 * 200 * 2
        # Each event is tagged with the thread that recorded it, and
        # every one of the 4 threads shows up.
        assert len({e["tid"] for e in events}) == 4

    def test_instant_event_shape(self):
        tracer = install(Tracer())
        tracer.instant("tick", cat="test", k=2)
        (event,) = tracer.events()
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert event["args"] == {"k": 2}


class TestSampling:
    def test_sample_emits_once_per_bucket(self):
        tracer = install(Tracer(sample_every=100))
        for count in range(0, 1000, 10):
            tracer.sample("conflicts", count)
        events = tracer.events()
        # Buckets 0..9 -> exactly 10 instants out of 100 calls.
        assert len(events) == 10
        assert [e["args"]["count"] // 100 for e in events] == list(range(10))

    def test_sample_buckets_are_per_name(self):
        tracer = install(Tracer(sample_every=100))
        tracer.sample("a", 5)
        tracer.sample("b", 7)
        assert len(tracer.events()) == 2


class TestRingBuffer:
    def test_eviction_drops_oldest_first(self):
        tracer = Tracer(ring_capacity=5)
        for i in range(12):
            tracer.instant(f"e{i}")
        names = [event["name"] for event in tracer.events()]
        assert names == ["e7", "e8", "e9", "e10", "e11"]

    def test_unbounded_without_capacity(self):
        tracer = Tracer()
        for i in range(100):
            tracer.instant(f"e{i}")
        assert len(tracer.events()) == 100


class TestSinkAndFlight:
    def test_jsonl_sink_appends_events(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        tracer = Tracer(sink=JsonlSink(path, flush_every=1))
        tracer.instant("one")
        tracer.instant("two")
        tracer.close()
        lines = [json.loads(line) for line in open(path)]
        assert [line["name"] for line in lines] == ["one", "two"]

    def test_flight_snapshot_written_periodically(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        tracer = Tracer(ring_capacity=4, flight_path=path, flight_every=3)
        for i in range(7):
            tracer.instant(f"e{i}")
        # Two snapshots happened (after 3 and 6 events); the file holds
        # the ring contents of the most recent one.
        names = [json.loads(line)["name"] for line in open(path)]
        assert names == ["e2", "e3", "e4", "e5"]
        tracer.close()  # final dump has the full tail
        names = [json.loads(line)["name"] for line in open(path)]
        assert names == ["e3", "e4", "e5", "e6"]

    def test_no_partial_flight_files_left(self, tmp_path):
        tracer = Tracer(
            ring_capacity=4, flight_path=str(tmp_path / "f.jsonl"), flight_every=1
        )
        for i in range(5):
            tracer.instant(f"e{i}")
        tracer.close()
        leftovers = [p for p in os.listdir(tmp_path) if p.startswith(".flight-")]
        assert leftovers == []


class TestWorkerActivation:
    def test_noop_without_environment(self):
        assert maybe_install_worker_tracer("test") is None
        assert get_tracer() is NULL_TRACER

    def test_installs_and_writes_role_pid_files(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        tracer = maybe_install_worker_tracer("role", flush_every=1)
        assert tracer is not None and get_tracer() is tracer
        tracer.instant("hello")
        shutdown_worker_tracer()
        assert get_tracer() is NULL_TRACER
        pid = os.getpid()
        sink = tmp_path / f"role-{pid}.jsonl"
        flight = tmp_path / f"flight-role-{pid}.jsonl"
        assert sink.exists() and flight.exists()
        assert json.loads(sink.read_text().splitlines()[0])["name"] == "hello"


class TestTraceSession:
    def test_writes_chrome_trace_and_restores_state(self, tmp_path):
        out = str(tmp_path / "trace.json")
        with trace_session(out, label="unit") as tracer:
            workers_dir = os.environ[TRACE_DIR_ENV]
            with tracer.span("inner", cat="test"):
                pass
        assert TRACE_DIR_ENV not in os.environ
        assert get_tracer() is NULL_TRACER
        assert not os.path.exists(workers_dir)  # tmp dir cleaned up
        document = json.load(open(out))
        names = {event["name"] for event in document["traceEvents"]}
        assert {"unit", "inner"} <= names

    def test_collects_worker_files(self, tmp_path):
        out = str(tmp_path / "trace.json")
        with trace_session(out):
            workers_dir = os.environ[TRACE_DIR_ENV]
            # Simulate a worker process writing its own sink.
            sink = JsonlSink(os.path.join(workers_dir, "fake-12345.jsonl"))
            sink.write(
                {"name": "w", "cat": "x", "ph": "i", "ts": 1, "s": "t",
                 "pid": 12345, "tid": 1, "args": {}}
            )
            sink.close()
        document = json.load(open(out))
        assert any(e["name"] == "w" for e in document["traceEvents"])
