"""Tests for the k-induction engine."""


from repro.benchgen import (
    combination_lock,
    modular_counter,
    parity_counter,
    pipeline_tag,
    token_ring,
)
from repro.core import KInduction, CheckResult


class TestSafeProofs:
    def test_one_inductive_property(self):
        # The parity invariant is inductive at k=1.
        outcome = KInduction(parity_counter(4).aig).check(max_k=3)
        assert outcome.result == CheckResult.SAFE
        assert outcome.frames == 1

    def test_token_ring_needs_small_k(self):
        outcome = KInduction(token_ring(4).aig).check(max_k=6)
        assert outcome.result == CheckResult.SAFE

    def test_pipeline_tag_safe(self):
        outcome = KInduction(pipeline_tag(4).aig).check(max_k=6)
        assert outcome.result == CheckResult.SAFE


class TestUnsafeAndUnknown:
    def test_counterexample_found_in_base_case(self):
        case = modular_counter(3, modulus=8, bad_value=3)
        outcome = KInduction(case.aig).check(max_k=10)
        assert outcome.result == CheckResult.UNSAFE

    def test_lock_found(self):
        outcome = KInduction(combination_lock([1, 2]).aig).check(max_k=10)
        assert outcome.result == CheckResult.UNSAFE

    def test_unknown_when_not_k_inductive_within_bound(self):
        # The counter range property usually needs k larger than 1-2.
        case = modular_counter(4, modulus=14, bad_value=15)
        outcome = KInduction(case.aig).check(max_k=1)
        assert outcome.result in (CheckResult.UNKNOWN, CheckResult.SAFE)

    def test_time_limit(self):
        case = modular_counter(4, modulus=14, bad_value=15)
        outcome = KInduction(case.aig).check(max_k=50, time_limit=0.0)
        assert outcome.result == CheckResult.UNKNOWN
        assert "time limit" in outcome.reason

    def test_engine_label(self):
        outcome = KInduction(parity_counter(3).aig).check(max_k=2)
        assert outcome.engine == "k-induction"
