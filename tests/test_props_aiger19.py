"""AIGER 1.9 justice/fairness I/O: round-trips, parity, strict errors."""

import pytest

from repro.aiger.aig import AIG, AigerError, AigerParseError
from repro.aiger.parser import parse_aiger
from repro.aiger.writer import to_aag_string, to_aig_bytes

pytestmark = pytest.mark.liveness


def _model_with_liveness() -> AIG:
    aig = AIG(comment="liveness fixture")
    go = aig.add_input("go")
    x = aig.add_latch(init=0, name="x")
    y = aig.add_latch(init=1, name="y")
    aig.set_latch_next(x, aig.or_gate(x, go))
    aig.set_latch_next(y, aig.xor_gate(y, x))
    aig.add_output(aig.add_and(x, y))
    aig.add_bad(aig.add_and(x, aig.negate(y)))
    aig.add_constraint(aig.negate(aig.add_and(x, go)))
    aig.add_justice([x, aig.negate(y)])
    aig.add_justice([y])
    aig.add_fairness(aig.negate(x))
    aig.validate()
    return aig


class TestJusticeConstruction:
    def test_add_justice_returns_index(self):
        aig = AIG()
        x = aig.add_latch(init=0)
        aig.set_latch_next(x, x)
        assert aig.add_justice([x]) == 0
        assert aig.add_justice([aig.negate(x)]) == 1
        assert aig.justice == [[x], [x ^ 1]]

    def test_empty_justice_rejected(self):
        aig = AIG()
        with pytest.raises(AigerError):
            aig.add_justice([])

    def test_unknown_literal_rejected(self):
        aig = AIG()
        with pytest.raises(AigerError):
            aig.add_justice([42])
        with pytest.raises(AigerError):
            aig.add_fairness(42)

    def test_simulate_records_justice_and_fairness(self):
        aig = _model_with_liveness()
        records = aig.simulate([{aig.inputs[0]: True}] * 3)
        for record in records:
            assert len(record["justice"]) == 2
            assert len(record["justice"][0]) == 2
            assert len(record["fairness"]) == 1


class TestAsciiRoundTrip:
    def test_justice_and_fairness_survive(self):
        aig = _model_with_liveness()
        again = parse_aiger(to_aag_string(aig))
        assert again.justice == aig.justice
        assert again.fairness == aig.fairness
        assert again.bads == aig.bads
        assert again.constraints == aig.constraints

    def test_header_counts_trimmed(self):
        aig = AIG()
        x = aig.add_latch(init=0)
        aig.set_latch_next(x, x)
        aig.add_justice([x])
        header = to_aag_string(aig).splitlines()[0].split()
        # aag M I L O A B C J (F trimmed, B/C zero-padded up to J)
        assert header == ["aag", "1", "0", "1", "0", "0", "0", "0", "1"]

    def test_double_roundtrip_is_stable(self):
        aig = _model_with_liveness()
        once = to_aag_string(parse_aiger(to_aag_string(aig)))
        twice = to_aag_string(parse_aiger(once))
        assert once == twice


class TestBinaryRoundTrip:
    def test_justice_and_fairness_survive(self):
        aig = _model_with_liveness()
        again = parse_aiger(to_aig_bytes(aig))
        assert len(again.justice) == 2
        assert [len(group) for group in again.justice] == [2, 1]
        assert len(again.fairness) == 1

    def test_ascii_and_binary_agree_behaviourally(self):
        aig = _model_with_liveness()
        from_ascii = parse_aiger(to_aag_string(aig))
        from_binary = parse_aiger(to_aig_bytes(aig))
        inputs = [{from_ascii.inputs[0]: step % 2 == 0} for step in range(6)]
        inputs_b = [{from_binary.inputs[0]: step % 2 == 0} for step in range(6)]
        records_a = from_ascii.simulate(inputs)
        records_b = from_binary.simulate(inputs_b)
        for a, b in zip(records_a, records_b):
            assert a["justice"] == b["justice"]
            assert a["fairness"] == b["fairness"]
            assert a["bads"] == b["bads"]
            assert a["constraints"] == b["constraints"]


class TestStrictParsing:
    def test_truncated_justice_sizes_rejected(self):
        text = "aag 1 0 1 0 0 0 0 1\n2 2\n"
        with pytest.raises(AigerParseError):
            parse_aiger(text)

    def test_truncated_justice_literals_rejected(self):
        # One justice property of size 2, but only one literal present.
        text = "aag 1 0 1 0 0 0 0 1\n2 2\n2\n3\n"
        with pytest.raises(AigerParseError):
            parse_aiger(text)

    def test_truncated_fairness_rejected(self):
        text = "aag 1 0 1 0 0 0 0 0 1\n2 2\n"
        with pytest.raises(AigerParseError):
            parse_aiger(text)

    def test_non_numeric_justice_size_rejected(self):
        text = "aag 1 0 1 0 0 0 0 1\n2 2\nbogus\n2\n"
        with pytest.raises(AigerParseError):
            parse_aiger(text)

    def test_zero_justice_size_rejected(self):
        text = "aag 1 0 1 0 0 0 0 1\n2 2\n0\n"
        with pytest.raises(AigerParseError):
            parse_aiger(text)

    def test_out_of_range_literal_rejected(self):
        text = "aag 1 0 1 0 0 0 0 1\n2 2\n1\n99\n"
        with pytest.raises(AigerParseError):
            parse_aiger(text)

    def test_too_many_header_fields_rejected(self):
        with pytest.raises(AigerParseError):
            parse_aiger("aag 0 0 0 0 0 0 0 0 0 0\n")

    def test_binary_header_mvar_mismatch_rejected(self):
        with pytest.raises(AigerParseError):
            parse_aiger(b"aig 5 1 1 0 1\n")

    def test_truncated_binary_justice_rejected(self):
        aig = _model_with_liveness()
        data = to_aig_bytes(aig)
        # Cut inside the textual sections before the AND bytes.
        with pytest.raises(AigerParseError):
            parse_aiger(data[:30])

    def test_parse_error_is_aiger_error(self):
        # Callers that caught AigerError keep working.
        assert issubclass(AigerParseError, AigerError)
