"""Tests for the order-independent structural digest of AIGs."""

from repro.aiger import parse_aiger, structural_digest
from repro.aiger.writer import to_aag_string
from repro.benchgen import modular_counter, token_ring

# A two-input AND feeding the single output: o0 = i0 & i1.
BASE = """aag 3 2 0 1 1
2
4
6
6 2 4
"""

# Same function with swapped AND operands.
SWAPPED = """aag 3 2 0 1 1
2
4
6
6 4 2
"""

# Same function after renumbering: a gap in the variable numbering plus a
# dead gate (8 = i0 & !i1) reachable from nothing.
RENUMBERED = """aag 4 2 0 1 2
2
4
6
6 2 4
8 2 5
"""

# A different function: o0 = i0 & !i1.
DIFFERENT = """aag 3 2 0 1 1
2
4
6
6 2 5
"""


def digest_of(text: str) -> str:
    return structural_digest(parse_aiger(text))


class TestCombinationalDigest:
    def test_deterministic(self):
        assert digest_of(BASE) == digest_of(BASE)

    def test_method_matches_function(self):
        aig = parse_aiger(BASE)
        assert aig.structural_digest() == structural_digest(aig)

    def test_operand_order_invariant(self):
        assert digest_of(BASE) == digest_of(SWAPPED)

    def test_dead_logic_and_renumbering_invariant(self):
        assert digest_of(BASE) == digest_of(RENUMBERED)

    def test_different_function_differs(self):
        assert digest_of(BASE) != digest_of(DIFFERENT)

    def test_duplicate_gates_hash_like_shared_gate(self):
        # Two syntactic copies of the same AND driving two outputs digest
        # identically to one shared gate driving both — exactly what a
        # structural-hash rebuild would produce.
        duplicated = """aag 4 2 0 2 2
2
4
6
8
6 2 4
8 2 4
"""
        shared = """aag 3 2 0 2 1
2
4
6
6
6 2 4
"""
        assert digest_of(duplicated) == digest_of(shared)


class TestSequentialDigest:
    def test_latch_init_matters(self):
        zero = "aag 1 0 1 1 0\n2 2 0\n2\n"
        one = "aag 1 0 1 1 0\n2 2 1\n2\n"
        assert digest_of(zero) != digest_of(one)

    def test_generated_circuits_differ(self):
        ring = token_ring(3).aig
        counter = modular_counter(3, modulus=8, bad_value=2).aig
        assert structural_digest(ring) != structural_digest(counter)

    def test_write_parse_roundtrip_stable(self):
        aig = token_ring(4).aig
        reparsed = parse_aiger(to_aag_string(aig))
        assert structural_digest(aig) == structural_digest(reparsed)

    def test_safe_vs_unsafe_variant_differ(self):
        assert (
            structural_digest(token_ring(3, safe=True).aig)
            != structural_digest(token_ring(3, safe=False).aig)
        )

    def test_digest_is_hex_sha256(self):
        digest = digest_of(BASE)
        assert len(digest) == 64
        int(digest, 16)
