"""Unit and property tests for cubes, clauses and the diff set.

The property tests exercise the paper's Theorems 3.2-3.4 and the
construction of Equation 6 directly on the data structures.
"""

import pytest
from hypothesis import given, strategies as st

from repro.logic import Cube, Clause, diff


def _cube_strategy(max_var=8, min_size=0, max_size=6):
    """Non-contradictory cubes: one polarity per variable."""
    return st.dictionaries(
        st.integers(min_value=1, max_value=max_var),
        st.booleans(),
        min_size=min_size,
        max_size=max_size,
    ).map(lambda d: Cube(v if pol else -v for v, pol in d.items()))


class TestCubeBasics:
    def test_canonical_order_and_dedup(self):
        assert Cube([3, -1, 3, 2]).literals == (-1, 2, 3)

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Cube([1, 0])

    def test_len_and_contains(self):
        cube = Cube([1, -2, 3])
        assert len(cube) == 3
        assert -2 in cube
        assert 2 not in cube

    def test_equality_and_hash(self):
        assert Cube([1, 2]) == Cube([2, 1])
        assert hash(Cube([1, 2])) == hash(Cube([2, 1]))
        assert Cube([1, 2]) != Cube([1, -2])

    def test_cube_and_clause_are_distinct_types(self):
        assert Cube([1]) != Clause([1])

    def test_empty_cube(self):
        cube = Cube()
        assert cube.is_empty()
        assert len(cube) == 0

    def test_variables(self):
        assert Cube([1, -5, 3]).variables == {1, 3, 5}

    def test_repr_round(self):
        assert "Cube" in repr(Cube([1, -2]))

    def test_ordering_comparable(self):
        assert sorted([Cube([2]), Cube([1])]) == [Cube([1]), Cube([2])]


class TestCubeOperations:
    def test_negate_gives_clause(self):
        clause = Cube([1, -2]).negate()
        assert isinstance(clause, Clause)
        assert set(clause) == {-1, 2}

    def test_double_negation(self):
        cube = Cube([1, -2, 3])
        assert cube.negate().negate() == cube

    def test_without(self):
        assert Cube([1, 2, 3]).without(2) == Cube([1, 3])

    def test_without_missing_literal(self):
        with pytest.raises(KeyError):
            Cube([1, 2]).without(3)

    def test_extended(self):
        assert Cube([1, 2]).extended(3) == Cube([1, 2, 3])

    def test_extended_existing_is_noop(self):
        assert Cube([1, 2]).extended(2) == Cube([1, 2])

    def test_extended_contradiction_rejected(self):
        with pytest.raises(ValueError):
            Cube([1, 2]).extended(-1)

    def test_restrict_to(self):
        assert Cube([1, -2, 3]).restrict_to([1, 3]) == Cube([1, 3])

    def test_subsumes(self):
        assert Cube([1]).subsumes(Cube([1, 2]))
        assert not Cube([1, 3]).subsumes(Cube([1, 2]))

    def test_is_tautological_detects_contradiction(self):
        assert Cube([1, -1]).is_tautological()
        assert not Cube([1, 2]).is_tautological()


class TestClause:
    def test_negate_gives_cube(self):
        cube = Clause([1, -2]).negate()
        assert isinstance(cube, Cube)
        assert set(cube) == {-1, 2}

    def test_implies_by_subsumption(self):
        assert Clause([1]).implies(Clause([1, 2]))
        assert not Clause([1, 2]).implies(Clause([1]))

    def test_without(self):
        assert Clause([1, 2, 3]).without(1) == Clause([2, 3])


class TestTheorem34:
    """Theorem 3.4: for non-empty cubes, a ⇒ b iff b ⊆ a."""

    def test_implies_when_superset(self):
        assert Cube([1, 2, 3]).implies(Cube([1, 3]))

    def test_not_implies_when_missing_literal(self):
        assert not Cube([1, 3]).implies(Cube([1, 2]))

    @given(_cube_strategy(), _cube_strategy())
    def test_implication_matches_subset(self, a, b):
        assert a.implies(b) == (b.literal_set <= a.literal_set)


class TestDiffSet:
    """Definition 3.1 and Theorems 3.2 / 3.3."""

    def test_basic(self):
        assert diff(Cube([1, 2, -3]), Cube([-1, 2, 3])) == {1, -3}

    def test_asymmetry(self):
        a, b = Cube([1, 2]), Cube([-1, -2])
        assert diff(a, b) == {1, 2}
        assert diff(b, a) == {-1, -2}

    def test_empty_when_no_conflict(self):
        assert diff(Cube([1, 2]), Cube([2, 3])) == frozenset()

    @given(_cube_strategy(), _cube_strategy())
    def test_theorem_3_2(self, a, b):
        """a ∧ b = ⊥ iff diff(a, b) ≠ ∅ (for non-contradictory cubes)."""
        conjunction_literals = set(a) | set(b)
        contradictory = any(-l in conjunction_literals for l in conjunction_literals)
        assert bool(diff(a, b)) == contradictory

    @given(_cube_strategy(), _cube_strategy(), _cube_strategy())
    def test_theorem_3_3(self, a, b, c):
        """If diff(a,b) ≠ ∅ and c ∩ diff(a,b) ≠ ∅ then diff(c,b) ≠ ∅."""
        d = diff(a, b)
        if d and (c.literal_set & d):
            assert diff(c, b)

    @given(_cube_strategy(max_var=10, min_size=1), st.data())
    def test_equation_6_properties(self, b, data):
        """A c3 built per Equation 6 satisfies Equations 2, 3 and 4."""
        # Build a CTP state t that disagrees with b on at least one literal.
        flip = data.draw(st.sampled_from(sorted(b.literals)))
        t = Cube([-flip] + [l for l in b if l != flip])
        # Parent cube c2: any strict subset of b that leaves out the flipped literal.
        c2 = Cube([l for l in b if l != flip][: max(0, len(b) - 2)])
        d_set = diff(b, t)
        assert d_set  # Equation 1
        literal = data.draw(st.sampled_from(sorted(d_set)))
        c3 = c2.extended(literal)
        assert diff(c3, t)                      # Equation 2: c3 ∧ t = ⊥
        assert c3.literal_set <= b.literal_set  # Equation 3: b ⊨ c3
        assert c2.literal_set <= c3.literal_set  # Equation 4: c3 ⊨ c2
