"""Property selection semantics of the transition system (AIGER 1.9).

Bads take precedence over outputs (with a warning when both exist), and
property-index errors name what the model actually declares.
"""

import warnings

import pytest

from repro.aiger.aig import AIG
from repro.ts.system import (
    EncodingError,
    PropertySelectionWarning,
    TransitionSystem,
    select_bads,
)


def _model(bads=0, outputs=0, justice=0):
    aig = AIG()
    x = aig.add_latch(init=0)
    aig.set_latch_next(x, aig.negate(x))
    for _ in range(bads):
        aig.add_bad(x)
    for _ in range(outputs):
        aig.add_output(x)
    for _ in range(justice):
        aig.add_justice([x])
    return aig


class TestPrecedence:
    def test_warns_when_both_bads_and_outputs(self):
        with pytest.warns(PropertySelectionWarning):
            select_bads(_model(bads=1, outputs=2))

    def test_bads_win(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PropertySelectionWarning)
            aig = _model(bads=2, outputs=3)
            assert select_bads(aig) == aig.bads

    def test_no_warning_without_ambiguity(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", PropertySelectionWarning)
            select_bads(_model(bads=1))
            select_bads(_model(outputs=1))

    def test_no_warning_when_fallback_disabled(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", PropertySelectionWarning)
            assert select_bads(
                _model(bads=1, outputs=1), use_outputs_as_bad=False
            ) == _model(bads=1).bads

    def test_transition_system_warning_can_be_opted_out(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", PropertySelectionWarning)
            TransitionSystem(_model(bads=1, outputs=1), warn_on_ambiguity=False)


class TestPropertyIndexErrors:
    def test_error_lists_declared_count_and_valid_range(self):
        with pytest.raises(EncodingError) as excinfo:
            TransitionSystem(_model(bads=2), property_index=5)
        message = str(excinfo.value)
        assert "2 bad properties" in message
        assert "0..1" in message

    def test_error_mentions_output_fallback(self):
        with pytest.raises(EncodingError) as excinfo:
            TransitionSystem(_model(outputs=1), property_index=3)
        assert "outputs (read as bads)" in str(excinfo.value)

    def test_justice_hint_on_no_safety_properties(self):
        with pytest.raises(EncodingError) as excinfo:
            TransitionSystem(_model(justice=1))
        message = str(excinfo.value)
        assert "justice" in message
        assert "l2s" in message

    def test_justice_hint_on_out_of_range_index(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PropertySelectionWarning)
            with pytest.raises(EncodingError) as excinfo:
                TransitionSystem(_model(bads=1, justice=2), property_index=4)
        assert "2 justice properties" in str(excinfo.value)
