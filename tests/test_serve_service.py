"""End-to-end tests of the verification service core.

Covers the PR's acceptance criteria: an isomorphic resubmission is served
from the structural-hash cache with the identical verdict and zero solver
work, and concurrent submissions against a bounded queue split cleanly
into admitted jobs (correct verdicts) and 503-style rejections — with the
metrics counters matching what was observed.
"""

import threading

import pytest

from repro.aiger.parser import parse_aiger
from repro.aiger.writer import to_aag_string
from repro.benchgen import modular_counter, token_ring
from repro.serve.protocol import JobOptions
from repro.serve.service import VerificationService

SAFE_TEXT = to_aag_string(token_ring(3, safe=True).aig)
UNSAFE_TEXT = to_aag_string(modular_counter(3, modulus=8, bad_value=2).aig)


def isomorphic_variant(text: str) -> str:
    """A renumbered, gate-permuted rebuild of the same circuit.

    Round-tripping through the binary writer renumbers every variable
    densely in a fresh topological order — byte-wise a different file,
    structurally the same AIG.
    """
    from repro.aiger.writer import to_aig_bytes

    return to_aag_string(parse_aiger(to_aig_bytes(parse_aiger(text))))


@pytest.fixture
def service():
    svc = VerificationService(
        workers=2, queue_depth=8, default_timeout=20.0, tenant_burst=100.0
    )
    svc.start()
    yield svc
    svc.stop()


class TestSubmission:
    def test_submit_and_wait_safe(self, service):
        status, payload = service.submit(SAFE_TEXT)
        assert status == 202
        assert payload["status"] == "queued"
        summary = service.wait(payload["id"], timeout=60)
        assert summary["status"] == "done"
        assert summary["result"]["result"] == "safe"
        assert summary["result"]["error"] is None
        assert summary["cache_hit"] is False

    def test_submit_unsafe_carries_witness(self, service):
        status, payload = service.submit(UNSAFE_TEXT)
        assert status == 202
        summary = service.wait(payload["id"], timeout=60)
        assert summary["result"]["result"] == "unsafe"
        witness = summary["result"]["witness"]
        assert witness is not None and witness["kind"] == "trace"
        assert witness["steps"]

    def test_rejects_invalid_model(self, service):
        status, payload = service.submit("not an aiger file")
        assert status == 400
        assert "invalid model" in payload["error"]

    def test_rejects_unknown_engine(self, service):
        status, payload = service.submit(
            SAFE_TEXT, options=JobOptions(engine="nonsense", timeout=5.0)
        )
        assert status == 400
        assert "unknown engine" in payload["error"]

    def test_get_job_and_list_jobs(self, service):
        _, payload = service.submit(SAFE_TEXT)
        service.wait(payload["id"], timeout=60)
        assert service.get_job(payload["id"])["id"] == payload["id"]
        assert service.get_job("job-nope") is None
        assert any(j["id"] == payload["id"] for j in service.list_jobs())


class TestStructuralCache:
    def test_isomorphic_resubmission_hits_cache(self, service):
        status, payload = service.submit(SAFE_TEXT)
        assert status == 202
        first = service.wait(payload["id"], timeout=60)
        assert first["result"]["result"] == "safe"

        variant = isomorphic_variant(SAFE_TEXT)
        assert variant != SAFE_TEXT  # byte-wise different submission
        status, second = service.submit(variant)
        assert status == 200  # answered inline, no queue slot
        assert second["cache_hit"] is True
        assert second["status"] == "done"
        # Identical verdict record, straight from the cache.
        assert second["result"] == first["result"]
        # Zero solver work: one completed run, one cache hit, and the
        # second job never touched the queue or a worker.
        assert service.metrics.get("jobs_submitted") == 2
        assert service.metrics.get("jobs_completed") == 1
        assert service.metrics.get("cache_hits") == 1
        assert service.metrics.get("cache_misses") == 1
        assert len(service.queue) == 0

    def test_different_options_miss_cache(self, service):
        _, payload = service.submit(SAFE_TEXT)
        service.wait(payload["id"], timeout=60)
        status, second = service.submit(
            SAFE_TEXT, options=JobOptions(engine="bmc", timeout=20.0)
        )
        assert status == 202  # different engine => different cache key
        service.wait(second["id"], timeout=60)
        assert service.metrics.get("cache_hits") == 0

    def test_unknown_verdicts_are_not_cached(self, service):
        # A budget far too small for even the reduced model: verdict
        # unknown, which must not be served to the next caller.
        opts = JobOptions(timeout=0.000001)
        _, payload = service.submit(SAFE_TEXT, options=opts)
        summary = service.wait(payload["id"], timeout=60)
        assert summary["result"]["result"] == "unknown"
        status, again = service.submit(SAFE_TEXT, options=opts)
        assert status == 202
        assert again["cache_hit"] is False
        service.wait(again["id"], timeout=60)


class TestBackpressure:
    def test_concurrent_overflow_rejected_with_503(self):
        service = VerificationService(
            workers=1, queue_depth=4, default_timeout=20.0, tenant_burst=100.0
        )
        service.start()
        try:
            # Keep the dispatcher from draining so occupancy is exact.
            service.pool.pause()
            outcomes = []
            lock = threading.Lock()

            def submit_one():
                status, payload = service.submit(SAFE_TEXT)
                with lock:
                    outcomes.append((status, payload))

            threads = [threading.Thread(target=submit_one) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            accepted = [p for s, p in outcomes if s == 202]
            rejected = [p for s, p in outcomes if s == 503]
            assert len(accepted) == 4
            assert len(rejected) == 4
            for payload in rejected:
                assert payload["retry_after"] >= 1
                assert "full" in payload["error"]
            assert service.metrics.get("jobs_submitted") == 8
            assert service.metrics.get("queue_rejections") == 4

            service.pool.resume()
            for payload in accepted:
                summary = service.wait(payload["id"], timeout=120)
                assert summary["status"] == "done"
                assert summary["result"]["result"] == "safe"
            snapshot = service.metrics_snapshot()
            assert snapshot["jobs_completed"] == 4
            assert snapshot["cache_hits"] == 0
            assert snapshot["queue_rejections"] == 4
            assert snapshot["worker_recycles"] == 0
        finally:
            service.stop()

    def test_tenant_budget_rejected_with_429(self):
        service = VerificationService(
            workers=1, queue_depth=8, tenant_rate=0.001, tenant_burst=2.0
        )
        service.start()
        try:
            service.pool.pause()
            assert service.submit(SAFE_TEXT, tenant="alice")[0] == 202
            assert service.submit(SAFE_TEXT, tenant="alice")[0] == 202
            status, payload = service.submit(SAFE_TEXT, tenant="alice")
            assert status == 429
            assert payload["retry_after"] >= 1
            # An independent tenant is unaffected.
            assert service.submit(SAFE_TEXT, tenant="bob")[0] == 202
            assert service.metrics.get("budget_rejections") == 1
        finally:
            service.stop()

    def test_stop_fails_queued_jobs(self):
        service = VerificationService(workers=1, queue_depth=8, tenant_burst=100.0)
        service.start()
        service.pool.pause()
        _, payload = service.submit(SAFE_TEXT)
        service.stop()
        summary = service.get_job(payload["id"])
        assert summary["status"] in ("failed", "done")
        if summary["status"] == "failed":
            assert "shut down" in summary["result"]["error"]

    def test_health_reports_capacity(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["queue_capacity"] == 8
