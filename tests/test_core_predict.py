"""Tests for the CTP table and the lemma-prediction algorithm (Algorithm 2)."""


from repro.benchgen import token_ring, modular_counter
from repro.core.frames import FrameManager
from repro.core.options import IC3Options
from repro.core.predict import CtpTable, LemmaPredictor
from repro.core.stats import IC3Stats
from repro.core.ic3 import IC3
from repro.core.result import CheckResult
from repro.logic import Cube, diff
from repro.ts import TransitionSystem


class TestCtpTable:
    def test_record_and_lookup(self):
        table = CtpTable()
        lemma, successor = Cube([1, 2]), Cube([-1, 2])
        table.record(lemma, 3, successor)
        assert table.lookup(lemma, 3) == successor
        assert (lemma, 3) in table
        assert len(table) == 1

    def test_lookup_respects_level(self):
        table = CtpTable()
        table.record(Cube([1]), 2, Cube([-1]))
        assert table.lookup(Cube([1]), 3) is None

    def test_overwrite_updates_entry(self):
        table = CtpTable()
        table.record(Cube([1]), 1, Cube([2]))
        table.record(Cube([1]), 1, Cube([-2]))
        assert table.lookup(Cube([1]), 1) == Cube([-2])
        assert len(table) == 1

    def test_clear(self):
        table = CtpTable()
        table.record(Cube([1]), 1, Cube([2]))
        table.clear()
        assert len(table) == 0
        assert table.lookup(Cube([1]), 1) is None

    def test_entries_copy(self):
        table = CtpTable()
        table.record(Cube([1]), 1, Cube([2]))
        entries = table.entries()
        entries.clear()
        assert len(table) == 1


def _predictor_setup(case=None, **option_kwargs):
    case = case if case is not None else token_ring(4)
    ts = TransitionSystem(case.aig)
    options = IC3Options(enable_prediction=True, **option_kwargs)
    stats = IC3Stats()
    frames = FrameManager(ts, options, stats)
    predictor = LemmaPredictor(frames, options, stats)
    return predictor, frames, ts, stats


class TestParentLemmas:
    def test_no_parents_when_frame_empty(self):
        predictor, frames, ts, _ = _predictor_setup()
        frames.add_frame()
        assert predictor.parent_lemmas(Cube([ts.latch_vars[0]]), 1) == []

    def test_level_zero_has_no_parents(self):
        predictor, _, ts, _ = _predictor_setup()
        assert predictor.parent_lemmas(Cube([ts.latch_vars[0]]), 0) == []

    def test_parent_must_be_contained_in_cube(self):
        predictor, frames, ts, _ = _predictor_setup()
        frames.add_frame()
        frames.add_frame()
        parent = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        unrelated = Cube([ts.latch_vars[2], ts.latch_vars[3]])
        frames.add_blocked_cube(parent, 1)
        frames.add_blocked_cube(unrelated, 1)
        bad = Cube([ts.latch_vars[0], ts.latch_vars[1], ts.latch_vars[2]])
        assert predictor.parent_lemmas(bad, 1) == [parent]

    def test_parent_only_from_exact_level(self):
        predictor, frames, ts, _ = _predictor_setup()
        frames.add_frame()
        frames.add_frame()
        parent = Cube([ts.latch_vars[0]])
        frames.add_blocked_cube(parent, 2)  # lives at level 2, not level 1
        bad = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        assert predictor.parent_lemmas(bad, 1) == []
        assert predictor.parent_lemmas(bad, 2) == [parent]


class TestRecordingFailures:
    def test_record_and_stats(self):
        predictor, _, ts, stats = _predictor_setup()
        predictor.record_push_failure(Cube([ts.latch_vars[0]]), 1, Cube([-ts.latch_vars[0]]))
        assert stats.ctp_recorded == 1
        assert predictor.table.lookup(Cube([ts.latch_vars[0]]), 1) is not None

    def test_record_none_successor_ignored(self):
        predictor, _, ts, stats = _predictor_setup()
        predictor.record_push_failure(Cube([ts.latch_vars[0]]), 1, None)
        assert stats.ctp_recorded == 0
        assert len(predictor.table) == 0

    def test_clear_counts_only_nonempty(self):
        predictor, _, ts, stats = _predictor_setup()
        predictor.clear_table()
        assert stats.ctp_table_clears == 0
        predictor.record_push_failure(Cube([ts.latch_vars[0]]), 1, Cube([ts.latch_vars[1]]))
        predictor.clear_table()
        assert stats.ctp_table_clears == 1
        assert len(predictor.table) == 0


class TestPrediction:
    def test_no_prediction_without_parents(self):
        predictor, frames, ts, stats = _predictor_setup()
        frames.add_frame()
        frames.add_frame()
        assert predictor.predict(Cube([ts.latch_vars[0]]), 2) is None
        assert stats.prediction_queries == 0

    def test_no_prediction_without_recorded_failure(self):
        predictor, frames, ts, stats = _predictor_setup()
        frames.add_frame()
        frames.add_frame()
        parent = Cube([ts.latch_vars[1]])
        frames.add_blocked_cube(parent, 1)
        bad = Cube([ts.latch_vars[1], ts.latch_vars[2]])
        assert predictor.predict(bad, 2) is None
        assert stats.parent_lemmas_found == 1
        assert stats.parent_lemma_hits == 0

    def test_successful_extended_prediction_in_engine_scenario(self):
        """Drive the predictor through a real IC3-like situation.

        In the 4-stage token ring, the lemma ¬(stage1 ∧ stage2) fails to
        propagate (we record a synthetic CTP with the real successor), and
        blocking the two-token cube (stage1 ∧ stage2 ∧ stage3) at the next
        level should then be predicted from the parent without dropping
        variables.
        """
        predictor, frames, ts, stats = _predictor_setup(token_ring(4))
        frames.add_frame()
        frames.add_frame()
        l0, l1, l2, l3 = ts.latch_vars
        parent = Cube([l1, l2])
        frames.add_blocked_cube(parent, 1)

        bad = Cube([l1, l2, l3])
        # CTP state that satisfies the parent but disagrees with `bad` on l3.
        ctp_state = Cube([-l0, l1, l2, -l3])
        predictor.record_push_failure(parent, 1, ctp_state)

        prediction = predictor.predict(bad, 2)
        assert prediction is not None
        assert prediction.kind == "extended"
        # Equation 6: the predicted cube extends the parent by one diff literal.
        assert parent.literal_set < prediction.cube.literal_set
        assert prediction.cube.literal_set <= bad.literal_set
        assert diff(prediction.cube, ctp_state)
        assert stats.prediction_successes == 1
        assert stats.parent_lemma_hits == 1
        assert stats.predicted_extended == 1

    def test_push_parent_prediction_when_diff_empty(self):
        predictor, frames, ts, stats = _predictor_setup(token_ring(4))
        frames.add_frame()
        frames.add_frame()
        l0, l1, l2, l3 = ts.latch_vars
        parent = Cube([l1, l2])
        frames.add_blocked_cube(parent, 1)
        # A second lemma that makes the parent's push succeed (it excludes
        # the only predecessor of a two-token state at stages 1 and 2).
        frames.add_blocked_cube(Cube([l0, l1]), 1)
        bad = Cube([l1, l2, l3])
        # CTP state that *agrees* with bad on every literal -> empty diff set.
        ctp_state = Cube([l1, l2, l3, -l0])
        predictor.record_push_failure(parent, 1, ctp_state)

        prediction = predictor.predict(bad, 2)
        assert prediction is not None
        assert prediction.kind == "push-parent"
        assert prediction.cube == parent
        assert stats.predicted_push_parent == 1

    def test_prediction_budget_limits_queries(self):
        predictor, frames, ts, stats = _predictor_setup(
            modular_counter(3, modulus=6, bad_value=7), max_prediction_candidates=1
        )
        frames.add_frame()
        frames.add_frame()
        parent = Cube([ts.latch_vars[0]])
        frames.add_blocked_cube(parent, 1)
        bad = Cube(list(ts.latch_vars))
        ctp_state = Cube([-v for v in ts.latch_vars])
        predictor.record_push_failure(parent, 1, ctp_state)
        predictor.predict(bad, 2)
        assert stats.prediction_queries <= 1

    def test_invariant_checking_mode_passes_for_valid_predictions(self):
        # Run a whole engine with assertion mode on; any violated invariant
        # would raise PredictionInvariantError and fail the check() call.
        options = IC3Options(enable_prediction=True, check_predicted_lemmas=True)
        outcome = IC3(token_ring(5).aig, options).check(time_limit=30)
        assert outcome.result == CheckResult.SAFE

    def test_predicted_lemma_is_relatively_inductive(self):
        """Whatever predict() returns must pass a consecution check."""
        predictor, frames, ts, stats = _predictor_setup(token_ring(4))
        frames.add_frame()
        frames.add_frame()
        l0, l1, l2, l3 = ts.latch_vars
        parent = Cube([l1, l2])
        frames.add_blocked_cube(parent, 1)
        bad = Cube([l1, l2, l3])
        predictor.record_push_failure(parent, 1, Cube([-l0, l1, l2, -l3]))
        prediction = predictor.predict(bad, 2)
        assert prediction is not None
        assert frames.consecution(1, prediction.cube).holds
