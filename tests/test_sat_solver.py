"""Unit and property tests for the CDCL SAT solver.

The solver is validated three ways: hand-written scenarios for every API
feature, randomized cross-checks against brute-force enumeration
(hypothesis), and structural checks on models and assumption cores.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import Cube
from repro.sat import Solver, SolverError, ResourceBudgetExceeded


def brute_force_satisfiable(num_vars, clauses):
    """Reference implementation by enumeration."""
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any((lit > 0) == bits[abs(lit) - 1] for lit in clause) for clause in clauses):
            return True
    return False


def clause_strategy(max_var=6, max_len=4):
    literal = st.integers(min_value=-max_var, max_value=max_var).filter(lambda x: x != 0)
    return st.lists(literal, min_size=1, max_size=max_len)


def cnf_strategy(max_var=6, max_clauses=20):
    return st.lists(clause_strategy(max_var), min_size=0, max_size=max_clauses)


class TestBasicSolving:
    def test_empty_formula_is_sat(self):
        assert Solver().solve() is True

    def test_single_unit(self):
        solver = Solver()
        solver.add_clause([1])
        assert solver.solve() is True
        assert solver.model_value(1) is True

    def test_contradictory_units(self):
        solver = Solver()
        solver.add_clause([1])
        assert solver.add_clause([-1]) is False
        assert solver.solve() is False

    def test_simple_unsat(self):
        solver = Solver()
        for clause in ([1, 2], [1, -2], [-1, 2], [-1, -2]):
            solver.add_clause(clause)
        assert solver.solve() is False

    def test_implication_chain(self):
        solver = Solver()
        for i in range(1, 20):
            solver.add_clause([-i, i + 1])
        solver.add_clause([1])
        assert solver.solve() is True
        assert solver.model_value(20) is True

    def test_pigeonhole_3_into_2_unsat(self):
        # Pigeon i in hole j -> variable 2*(i-1)+j, i in 1..3, j in 1..2.
        def var(i, j):
            return 2 * (i - 1) + j

        solver = Solver()
        for i in (1, 2, 3):
            solver.add_clause([var(i, 1), var(i, 2)])
        for j in (1, 2):
            for i1, i2 in itertools.combinations((1, 2, 3), 2):
                solver.add_clause([-var(i1, j), -var(i2, j)])
        assert solver.solve() is False

    def test_tautological_clause_ignored(self):
        solver = Solver()
        solver.add_clause([1, -1])
        solver.add_clause([-2])
        assert solver.solve() is True
        assert solver.model_value(2) is False

    def test_duplicate_literals_collapsed(self):
        solver = Solver()
        solver.add_clause([3, 3, 3])
        assert solver.solve() is True
        assert solver.model_value(3) is True

    def test_is_consistent_flag(self):
        solver = Solver()
        assert solver.is_consistent()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert not solver.is_consistent()

    def test_invalid_literal_rejected(self):
        with pytest.raises(SolverError):
            Solver().add_clause([0])

    def test_invalid_options_rejected(self):
        with pytest.raises(SolverError):
            Solver(var_decay=0.0)
        with pytest.raises(SolverError):
            Solver(clause_decay=1.5)


class TestModels:
    def test_model_satisfies_all_clauses(self):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [2, 3]]
        solver = Solver()
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is True
        model = solver.get_model()
        for clause in clauses:
            assert any(model.get(abs(l), False) == (l > 0) for l in clause)

    def test_model_unavailable_after_unsat(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1])
        solver.solve()
        with pytest.raises(SolverError):
            solver.get_model()

    def test_model_value_of_negative_literal(self):
        solver = Solver()
        solver.add_clause([-4])
        solver.solve()
        assert solver.model_value(-4) is True
        assert solver.model_value(4) is False

    def test_model_cube_projection(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-2])
        solver.ensure_var(3)
        solver.solve()
        cube = solver.model_cube([1, 2])
        assert isinstance(cube, Cube)
        assert cube == Cube([1, -2])


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = Solver()
        solver.add_clause([-1, 2])
        assert solver.solve([1]) is True
        assert solver.model_value(2) is True
        assert solver.solve([-1]) is True

    def test_unsat_under_assumptions_only(self):
        solver = Solver()
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve([1, -3]) is False
        assert solver.solve() is True  # still satisfiable without assumptions

    def test_core_is_subset_of_assumptions(self):
        solver = Solver()
        solver.add_clause([-1, -2])
        assert solver.solve([1, 2, 3]) is False
        core = solver.unsat_core()
        assert set(core) <= {1, 2, 3}
        assert set(core) >= {1, 2}  # 3 is irrelevant

    def test_core_excludes_irrelevant_assumption(self):
        solver = Solver()
        solver.add_clause([-5])
        assert solver.solve([5, 7]) is False
        assert solver.unsat_core() == [5]

    def test_core_unavailable_after_sat(self):
        solver = Solver()
        solver.solve([1])
        with pytest.raises(SolverError):
            solver.unsat_core()

    def test_conflicting_assumptions(self):
        solver = Solver()
        solver.ensure_var(1)
        assert solver.solve([1, -1]) is False
        assert set(solver.unsat_core()) <= {1, -1}

    def test_empty_core_when_formula_unsat(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve([2]) is False
        assert solver.unsat_core() == []

    def test_invalid_assumption_literal(self):
        with pytest.raises(SolverError):
            Solver().solve([0])

    def test_core_is_really_unsat(self):
        solver = Solver()
        solver.add_clause([-1, -2, -3])
        solver.add_clause([-1, 3])
        assert solver.solve([1, 2, 3, 4]) is False
        core = solver.unsat_core()
        # Re-checking with only the core assumptions must still be UNSAT.
        assert solver.solve(core) is False


class TestIncremental:
    def test_add_clauses_between_solves(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve() is True
        solver.add_clause([-1])
        assert solver.solve() is True
        assert solver.model_value(2) is True
        solver.add_clause([-2])
        assert solver.solve() is False

    def test_many_incremental_queries_with_activation_literals(self):
        solver = Solver()
        solver.ensure_var(10)
        # chain: x_i -> x_{i+1}
        for i in range(1, 10):
            solver.add_clause([-i, i + 1])
        for round_index in range(30):
            act = solver.new_var()
            solver.add_clause([-act, -10])
            assert solver.solve([act, 1]) is False
            solver.add_clause([-act])  # retire
            assert solver.solve([1]) is True

    def test_solve_calls_counted(self):
        solver = Solver()
        solver.add_clause([1])
        solver.solve()
        solver.solve()
        assert solver.stats.solve_calls == 2

    def test_stats_dictionary(self):
        solver = Solver()
        solver.add_clause([1, 2])
        solver.solve()
        stats = solver.stats.as_dict()
        assert stats["solve_calls"] == 1
        assert "conflicts" in stats and "decisions" in stats


class TestBudget:
    def test_budget_exhaustion_raises(self):
        solver = Solver(restart_base=1)
        # A moderately hard pigeonhole instance: 5 pigeons into 4 holes.
        def var(i, j):
            return 4 * (i - 1) + j

        for i in range(1, 6):
            solver.add_clause([var(i, j) for j in range(1, 5)])
        for j in range(1, 5):
            for i1, i2 in itertools.combinations(range(1, 6), 2):
                solver.add_clause([-var(i1, j), -var(i2, j)])
        with pytest.raises(ResourceBudgetExceeded):
            solver.solve(conflict_budget=3)

    def test_solve_limited_returns_none(self):
        solver = Solver(restart_base=1)
        def var(i, j):
            return 4 * (i - 1) + j

        for i in range(1, 6):
            solver.add_clause([var(i, j) for j in range(1, 5)])
        for j in range(1, 5):
            for i1, i2 in itertools.combinations(range(1, 6), 2):
                solver.add_clause([-var(i1, j), -var(i2, j)])
        assert solver.solve_limited(conflict_budget=3) is None

    def test_budget_large_enough_still_answers(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve(conflict_budget=1000) is True


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(cnf_strategy())
    def test_verdict_matches_enumeration(self, clauses):
        solver = Solver()
        solver.ensure_var(6)
        for clause in clauses:
            solver.add_clause(clause)
        expected = brute_force_satisfiable(6, clauses)
        assert solver.solve() == expected

    @settings(max_examples=40, deadline=None)
    @given(cnf_strategy(), st.lists(st.integers(min_value=-6, max_value=6).filter(lambda x: x != 0), max_size=3))
    def test_assumptions_match_enumeration(self, clauses, assumptions):
        solver = Solver()
        solver.ensure_var(6)
        for clause in clauses:
            solver.add_clause(clause)
        augmented = clauses + [[a] for a in assumptions]
        expected = brute_force_satisfiable(6, augmented)
        assert solver.solve(assumptions) == expected

    @settings(max_examples=40, deadline=None)
    @given(cnf_strategy())
    def test_models_are_genuine(self, clauses):
        solver = Solver()
        solver.ensure_var(6)
        for clause in clauses:
            solver.add_clause(clause)
        if solver.solve():
            model = solver.get_model()
            for clause in clauses:
                simplified = {l for l in clause}
                if any(-l in simplified for l in simplified):
                    continue  # tautology never added
                assert any(model.get(abs(l), False) == (l > 0) for l in clause)

    @settings(max_examples=30, deadline=None)
    @given(cnf_strategy(max_var=5), st.lists(
        st.integers(min_value=-5, max_value=5).filter(lambda x: x != 0),
        min_size=1, max_size=4, unique_by=abs))
    def test_cores_are_sound(self, clauses, assumptions):
        solver = Solver()
        solver.ensure_var(5)
        for clause in clauses:
            solver.add_clause(clause)
        if solver.solve(assumptions) is False:
            core = solver.unsat_core()
            assert set(core) <= set(assumptions)
            # The core alone (as units) must already be inconsistent with the formula.
            augmented = clauses + [[a] for a in core]
            assert not brute_force_satisfiable(5, augmented)
