"""Tests for the VSIDS order heap."""

import random

import pytest

from repro.sat.heap import VarOrderHeap


class TestVarOrderHeap:
    def test_empty(self):
        heap = VarOrderHeap(lambda v: 0.0)
        assert heap.is_empty()
        assert len(heap) == 0
        with pytest.raises(IndexError):
            heap.pop_max()

    def test_insert_and_pop_max(self):
        activity = {1: 1.0, 2: 5.0, 3: 3.0}
        heap = VarOrderHeap(lambda v: activity[v])
        for var in activity:
            heap.insert(var)
        assert heap.pop_max() == 2
        assert heap.pop_max() == 3
        assert heap.pop_max() == 1

    def test_duplicate_insert_is_noop(self):
        heap = VarOrderHeap(lambda v: 0.0)
        heap.insert(1)
        heap.insert(1)
        assert len(heap) == 1

    def test_contains(self):
        heap = VarOrderHeap(lambda v: 0.0)
        heap.insert(4)
        assert 4 in heap
        assert 5 not in heap
        heap.pop_max()
        assert 4 not in heap

    def test_update_after_activity_bump(self):
        activity = {1: 1.0, 2: 2.0}
        heap = VarOrderHeap(lambda v: activity[v])
        heap.insert(1)
        heap.insert(2)
        activity[1] = 10.0
        heap.update(1)
        assert heap.pop_max() == 1

    def test_update_of_absent_variable_is_noop(self):
        heap = VarOrderHeap(lambda v: 0.0)
        heap.update(42)  # must not raise
        assert heap.is_empty()

    def test_rebuild(self):
        activity = {v: float(v) for v in range(1, 8)}
        heap = VarOrderHeap(lambda v: activity[v])
        heap.rebuild(list(activity))
        assert heap.pop_max() == 7
        assert len(heap) == 6

    def test_random_sequences_pop_in_activity_order(self):
        rng = random.Random(1)
        activity = {v: rng.random() for v in range(1, 60)}
        heap = VarOrderHeap(lambda v: activity[v])
        for var in activity:
            heap.insert(var)
        popped = [heap.pop_max() for _ in range(len(activity))]
        expected = sorted(activity, key=lambda v: -activity[v])
        assert popped == expected

    def test_interleaved_insert_pop(self):
        rng = random.Random(7)
        activity = {v: rng.random() for v in range(1, 40)}
        heap = VarOrderHeap(lambda v: activity[v])
        present = set()
        for step in range(300):
            if present and rng.random() < 0.4:
                top = heap.pop_max()
                assert activity[top] == max(activity[v] for v in present)
                present.discard(top)
            else:
                var = rng.randint(1, 39)
                heap.insert(var)
                present.add(var)
        assert len(heap) == len(present)
