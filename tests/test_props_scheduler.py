"""The multi-property scheduler: obligations, sharing, verdicts, engine."""

import pytest

from repro.aiger.aig import AIG, FALSE_LIT
from repro.benchgen.liveness import mixed_properties, token_ring_live
from repro.core.result import CheckResult
from repro.engines import available_engines, create_engine
from repro.props import (
    PropertyScheduler,
    SchedulerError,
    enumerate_obligations,
)

pytestmark = pytest.mark.liveness


def _one_hot_ring_multi(size=5):
    """A ring with three SAFE bads over the same cone (for lemma sharing)."""
    aig = AIG()
    stages = [aig.add_latch(init=1 if i == 0 else 0) for i in range(size)]
    for index, stage in enumerate(stages):
        aig.set_latch_next(stage, stages[(index - 1) % size])
    collision = FALSE_LIT
    for i in range(size):
        for j in range(i + 1, size):
            collision = aig.or_gate(collision, aig.add_and(stages[i], stages[j]))
    aig.add_bad(collision)
    aig.add_bad(aig.and_many([stages[0], stages[2]]))
    aig.add_bad(aig.and_many([stages[1], stages[3]]))
    aig.validate()
    return aig


class TestObligations:
    def test_bads_then_justice(self):
        case = mixed_properties(3)
        obligations = enumerate_obligations(case.aig)
        assert [ob.label for ob in obligations] == ["b0", "b1", "j0"]
        assert [ob.kind for ob in obligations] == ["bad", "bad", "justice"]
        assert [ob.number for ob in obligations] == [0, 1, 2]

    def test_outputs_fall_back_when_no_bads(self):
        aig = AIG()
        x = aig.add_latch(init=0)
        aig.set_latch_next(x, x)
        aig.add_output(x)
        obligations = enumerate_obligations(aig)
        assert [ob.label for ob in obligations] == ["o0"]

    def test_bads_win_over_outputs(self):
        aig = AIG()
        x = aig.add_latch(init=0)
        aig.set_latch_next(x, x)
        aig.add_output(x)
        aig.add_bad(x)
        obligations = enumerate_obligations(aig)
        assert [ob.label for ob in obligations] == ["b0"]


class TestScheduler:
    def test_mixed_model_one_verdict_per_property(self):
        case = mixed_properties(3)
        result = PropertyScheduler(case.aig, max_k=8).run(time_limit=120)
        assert [v.result for v in result.verdicts] == case.expected_properties
        assert result.aggregate == CheckResult.UNSAFE
        assert result.all_validated

    def test_shared_bmc_resolves_shallow_unsafe(self):
        case = mixed_properties(3)
        result = PropertyScheduler(case.aig, max_k=8).run(time_limit=120)
        unsafe = [v for v in result.verdicts if v.result == CheckResult.UNSAFE]
        assert unsafe and unsafe[0].engine == "bmc(shared)"
        assert result.shared_bmc_queries > 0

    def test_lemma_sharing_between_cone_siblings(self):
        result = PropertyScheduler(_one_hot_ring_multi()).run(time_limit=120)
        assert all(v.result == CheckResult.SAFE for v in result.verdicts)
        assert result.shared_lemmas_pooled > 0
        # At least one sibling consumed pooled invariants as free lemmas.
        assert any(v.shared_lemmas_applied > 0 for v in result.verdicts)

    def test_sharing_can_be_disabled(self):
        result = PropertyScheduler(
            _one_hot_ring_multi(), share_lemmas=False, share_unrollings=False
        ).run(time_limit=120)
        assert all(v.result == CheckResult.SAFE for v in result.verdicts)
        assert result.shared_bmc_queries == 0
        assert all(v.shared_lemmas_applied == 0 for v in result.verdicts)

    def test_property_selection(self):
        case = mixed_properties(3)
        result = PropertyScheduler(case.aig, properties=[1]).run(time_limit=60)
        assert len(result.verdicts) == 1
        assert result.verdicts[0].obligation.label == "b1"
        assert result.verdicts[0].result == CheckResult.UNSAFE

    def test_unknown_property_number_rejected(self):
        case = mixed_properties(3)
        with pytest.raises(SchedulerError) as excinfo:
            PropertyScheduler(case.aig, properties=[9])
        assert "b0" in str(excinfo.value)  # the error lists what exists

    def test_no_properties_rejected(self):
        aig = AIG()
        x = aig.add_latch(init=0)
        aig.set_latch_next(x, x)
        with pytest.raises(SchedulerError):
            PropertyScheduler(aig)

    def test_verdict_records_are_serializable(self):
        import json

        case = mixed_properties(3)
        result = PropertyScheduler(case.aig, max_k=8).run(time_limit=120)
        payload = json.dumps(result.as_dict())
        assert '"aggregate": "unsafe"' in payload

    def test_justice_only_model(self):
        case = token_ring_live(3, safe=True)
        result = PropertyScheduler(case.aig, max_k=8).run(time_limit=120)
        assert len(result.verdicts) == 1
        assert result.verdicts[0].result == CheckResult.SAFE
        assert result.aggregate == CheckResult.SAFE


class TestSchedulerEngine:
    def test_registered(self):
        assert "scheduler" in available_engines()

    def test_outcome_carries_property_records(self):
        case = mixed_properties(3)
        engine = create_engine("scheduler", case.aig, max_k=8)
        outcome = engine.check(time_limit=120)
        assert outcome.result == CheckResult.UNSAFE
        assert outcome.engine == "scheduler"
        assert [p["result"] for p in outcome.properties] == [
            "safe",
            "unsafe",
            "safe",
        ]
        assert all(p["validated"] is not False for p in outcome.properties)

    def test_property_index_selects_single_obligation(self):
        case = mixed_properties(3)
        outcome = create_engine(
            "scheduler", case.aig, property_index=0
        ).check(time_limit=60)
        assert outcome.result == CheckResult.SAFE
        assert len(outcome.properties) == 1
