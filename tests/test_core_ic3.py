"""End-to-end tests of the IC3 engine (with and without lemma prediction)."""

import pytest

from repro.aiger import AIG
from repro.benchgen import (
    combination_lock,
    counter_overflow,
    fifo_controller,
    johnson_counter,
    lfsr,
    modular_counter,
    parity_counter,
    pipeline_tag,
    round_robin_arbiter,
    token_ring,
    traffic_light,
)
from repro.core import (
    IC3,
    BMC,
    CheckResult,
    IC3Options,
    check_certificate,
    check_counterexample,
)
from repro.core.options import GeneralizationStrategy


BASE = IC3Options.profile_ic3_a()
PRED = IC3Options.profile_ic3_a().with_prediction()


def _check(case, options, time_limit=60):
    return IC3(case.aig, options).check(time_limit=time_limit)


class TestSafeVerdicts:
    @pytest.mark.parametrize(
        "case_factory",
        [
            lambda: token_ring(4),
            lambda: johnson_counter(4),
            lambda: lfsr(4),
            lambda: pipeline_tag(4),
            lambda: round_robin_arbiter(3),
            lambda: fifo_controller(3),
            lambda: traffic_light(safe=True),
            lambda: modular_counter(4, modulus=14, bad_value=15),
            lambda: parity_counter(4),
            lambda: counter_overflow(4, safe=True),
        ],
        ids=lambda f: f().family + "-" + f().name,
    )
    @pytest.mark.parametrize("options", [BASE, PRED], ids=["base", "prediction"])
    def test_safe_cases_with_valid_certificates(self, case_factory, options):
        case = case_factory()
        outcome = _check(case, options)
        assert outcome.result == CheckResult.SAFE
        assert outcome.certificate is not None
        assert check_certificate(case.aig, outcome.certificate)

    def test_safe_certificate_clauses_over_state_vars(self):
        case = token_ring(4)
        engine = IC3(case.aig, PRED)
        outcome = engine.check(time_limit=60)
        assert outcome.result == CheckResult.SAFE
        state_vars = set(engine.ts.latch_vars)
        for clause in outcome.certificate.clauses:
            assert {abs(l) for l in clause} <= state_vars


class TestUnsafeVerdicts:
    @pytest.mark.parametrize(
        "case_factory",
        [
            lambda: token_ring(4, safe=False),
            lambda: johnson_counter(4, safe=False),
            lambda: lfsr(4, safe=False, unsafe_depth=3),
            lambda: pipeline_tag(4, safe=False),
            lambda: round_robin_arbiter(3, safe=False),
            lambda: fifo_controller(2, safe=False),
            lambda: traffic_light(safe=False),
            lambda: modular_counter(3, modulus=7, bad_value=4),
            lambda: parity_counter(3, safe=False),
            lambda: combination_lock([1, 2, 3]),
        ],
        ids=lambda f: f().name,
    )
    @pytest.mark.parametrize("options", [BASE, PRED], ids=["base", "prediction"])
    def test_unsafe_cases_with_replayable_traces(self, case_factory, options):
        case = case_factory()
        outcome = _check(case, options)
        assert outcome.result == CheckResult.UNSAFE
        assert outcome.trace is not None
        assert check_counterexample(case.aig, outcome.trace)

    @pytest.mark.parametrize("options", [BASE, PRED], ids=["base", "prediction"])
    def test_counterexample_depth_is_minimal_for_counter(self, options):
        # IC3 does not guarantee shortest counterexamples in general, but it
        # cannot find one shorter than the real shortest path.
        case = modular_counter(3, modulus=7, bad_value=4)
        outcome = _check(case, options)
        assert outcome.trace.depth >= case.expected_depth

    def test_bad_initial_state_detected(self):
        case = modular_counter(3, modulus=8, bad_value=0)
        outcome = _check(case, PRED)
        assert outcome.result == CheckResult.UNSAFE
        assert outcome.trace.depth == 0

    def test_trace_inputs_recorded(self):
        case = combination_lock([2, 1])
        outcome = _check(case, PRED)
        assert outcome.result == CheckResult.UNSAFE
        assert len(outcome.trace.steps) >= 2
        assert all(isinstance(step.inputs, dict) for step in outcome.trace.steps)


class TestSpecialCases:
    def test_combinational_safe(self):
        aig = AIG()
        a = aig.add_input()
        aig.add_bad(aig.add_and(a, aig.negate(a)))
        outcome = IC3(aig).check()
        assert outcome.result == CheckResult.SAFE

    def test_combinational_unsafe(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        aig.add_bad(aig.add_and(a, b))
        outcome = IC3(aig).check()
        assert outcome.result == CheckResult.UNSAFE

    def test_multiple_properties_selectable(self):
        aig = AIG()
        latch = aig.add_latch(init=0)
        aig.set_latch_next(latch, aig.negate(latch))
        aig.add_bad(latch)                      # reachable at step 1
        aig.add_bad(aig.add_and(latch, aig.negate(latch)))  # never
        assert IC3(aig, property_index=0).check().result == CheckResult.UNSAFE
        assert IC3(aig, property_index=1).check().result == CheckResult.SAFE

    def test_timeout_returns_unknown(self):
        case = parity_counter(8)
        outcome = _check(case, BASE, time_limit=0.2)
        assert outcome.result == CheckResult.UNKNOWN
        assert "time limit" in outcome.reason

    def test_frame_limit_returns_unknown(self):
        import dataclasses
        options = dataclasses.replace(BASE, max_frames=2)
        case = modular_counter(4, modulus=14, bad_value=15)
        outcome = _check(case, options)
        assert outcome.result in (CheckResult.UNKNOWN, CheckResult.SAFE)
        if outcome.result == CheckResult.UNKNOWN:
            assert "frame limit" in outcome.reason

    def test_outcome_metadata(self):
        case = token_ring(3)
        outcome = _check(case, PRED)
        assert outcome.solved
        assert outcome.runtime > 0
        assert outcome.frames >= 1
        assert outcome.engine == "ic3-pl"
        assert "safe" in outcome.summary()


class TestPredictionBehaviour:
    def test_prediction_statistics_populated(self):
        case = modular_counter(5, modulus=30, bad_value=31)
        outcome = _check(case, PRED)
        stats = outcome.stats
        assert outcome.result == CheckResult.SAFE
        assert stats.generalizations > 0
        assert stats.prediction_queries > 0
        assert stats.prediction_successes > 0
        assert stats.ctp_recorded > 0
        assert stats.sr_adv is not None and stats.sr_adv > 0
        assert stats.sr_lp is not None and 0 < stats.sr_lp <= 1

    def test_base_engine_never_predicts(self):
        case = modular_counter(5, modulus=30, bad_value=31)
        outcome = _check(case, BASE)
        assert outcome.stats.prediction_queries == 0
        assert outcome.stats.prediction_successes == 0

    def test_prediction_reduces_drop_attempts(self):
        case = johnson_counter(6)
        base = _check(case, BASE)
        predicted = _check(case, PRED)
        assert base.result == predicted.result == CheckResult.SAFE
        assert predicted.stats.mic_drop_attempts < base.stats.mic_drop_attempts

    def test_prediction_agrees_with_base_on_suite(self):
        for case in [
            token_ring(5),
            token_ring(4, safe=False),
            fifo_controller(3),
            fifo_controller(2, safe=False),
            lfsr(5),
            combination_lock([1, 2]),
        ]:
            base = _check(case, BASE)
            predicted = _check(case, PRED)
            assert base.result == predicted.result, case.name

    def test_all_strategy_and_prediction_combinations(self):
        case = token_ring(4)
        for strategy in GeneralizationStrategy:
            for prediction in (False, True):
                options = IC3Options(
                    generalization=strategy, enable_prediction=prediction
                )
                outcome = _check(case, options)
                assert outcome.result == CheckResult.SAFE, (strategy, prediction)

    def test_ctp_table_clearing_toggle(self):
        import dataclasses
        case = modular_counter(4, modulus=14, bad_value=15)
        keep = dataclasses.replace(PRED, clear_ctp_before_propagation=False)
        outcome_clear = _check(case, PRED)
        outcome_keep = _check(case, keep)
        assert outcome_clear.result == outcome_keep.result == CheckResult.SAFE
        assert outcome_keep.stats.ctp_table_clears == 0

    def test_diffset_refinement_toggle(self):
        import dataclasses
        case = modular_counter(4, modulus=14, bad_value=15)
        no_refine = dataclasses.replace(PRED, refine_diff_set=False)
        outcome = _check(case, no_refine)
        assert outcome.result == CheckResult.SAFE


class TestAgainstBMC:
    @pytest.mark.parametrize(
        "case_factory",
        [
            lambda: modular_counter(3, modulus=7, bad_value=5),
            lambda: johnson_counter(4, safe=False),
            lambda: combination_lock([1, 0, 2]),
            lambda: counter_overflow(3, safe=False),
        ],
        ids=lambda f: f().name,
    )
    def test_unsafe_depth_not_shorter_than_bmc(self, case_factory):
        """BMC finds shortest counterexamples; IC3's cannot be shorter."""
        case = case_factory()
        bmc_outcome = BMC(case.aig).check(max_depth=40)
        ic3_outcome = _check(case, PRED)
        assert bmc_outcome.result == CheckResult.UNSAFE
        assert ic3_outcome.result == CheckResult.UNSAFE
        assert ic3_outcome.trace.depth >= bmc_outcome.trace.depth
