"""Tests for the datapath-consistency benchmark families (Gray / lockstep)."""

import pytest

from repro.benchgen import extended_suite, gray_counter, lockstep_counters
from repro.core import IC3, BMC, CheckResult, IC3Options, check_certificate

from tests.test_benchgen_circuits import exhaustive_bad_reachability


DATAPATH_CASES = [
    gray_counter(3, safe=True),
    gray_counter(3, safe=False),
    gray_counter(4, safe=True),
    gray_counter(4, safe=False),
    lockstep_counters(3, safe=True),
    lockstep_counters(3, safe=False),
    lockstep_counters(4, safe=True),
    lockstep_counters(4, safe=False),
]


class TestGroundTruth:
    @pytest.mark.parametrize("case", DATAPATH_CASES, ids=lambda c: c.name)
    def test_expected_verdict_matches_reachability(self, case):
        reachable, depth = exhaustive_bad_reachability(case.aig)
        assert reachable == (case.expected == CheckResult.UNSAFE)
        if reachable:
            assert depth == case.expected_depth

    @pytest.mark.parametrize(
        "case",
        [c for c in DATAPATH_CASES if c.expected == CheckResult.UNSAFE],
        ids=lambda c: c.name,
    )
    def test_bmc_confirms_depth(self, case):
        bmc = BMC(case.aig)
        assert bmc.check_depth(case.expected_depth - 1) is False
        assert bmc.check_depth(case.expected_depth) is True

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            gray_counter(1)
        with pytest.raises(ValueError):
            lockstep_counters(1)

    def test_metadata(self):
        case = gray_counter(5)
        assert case.family == "gray"
        assert case.params["width"] == 5
        assert lockstep_counters(5).family == "lockstep"


class TestEngineOnDatapathFamilies:
    @pytest.mark.parametrize("case", DATAPATH_CASES, ids=lambda c: c.name)
    def test_ic3_with_prediction_matches_ground_truth(self, case):
        outcome = IC3(case.aig, IC3Options().with_prediction()).check(time_limit=60)
        assert outcome.result == case.expected
        if outcome.result == CheckResult.SAFE:
            assert check_certificate(case.aig, outcome.certificate)

    def test_prediction_fires_on_lockstep_invariant(self):
        case = lockstep_counters(5, safe=True)
        outcome = IC3(case.aig, IC3Options().with_prediction()).check(time_limit=60)
        assert outcome.result == CheckResult.SAFE
        assert outcome.stats.generalizations > 0


class TestExtendedSuite:
    def test_extended_suite_superset_of_default(self):
        from repro.benchgen import default_suite

        default_names = {c.name for c in default_suite()}
        extended_names = {c.name for c in extended_suite()}
        assert default_names < extended_names
        assert any(name.startswith("gray_") for name in extended_names)
        assert any(name.startswith("lockstep_") for name in extended_names)

    def test_extended_suite_names_unique(self):
        cases = extended_suite()
        assert len({c.name for c in cases}) == len(cases)

    def test_extended_suite_has_ground_truth(self):
        assert all(c.expected is not None for c in extended_suite())
