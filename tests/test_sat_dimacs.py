"""Tests for DIMACS parsing, loading and writing."""

import pytest

from repro.logic import CNF
from repro.sat import parse_dimacs, write_dimacs
from repro.sat.dimacs import load_dimacs
from repro.sat.exceptions import SolverError


class TestParseDimacs:
    def test_basic(self):
        num_vars, clauses = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n")
        assert num_vars == 3
        assert clauses == [[1, -2], [2, 3]]

    def test_comments_skipped(self):
        _, clauses = parse_dimacs("c hello\nc world\np cnf 1 1\n1 0\n")
        assert clauses == [[1]]

    def test_missing_header_tolerated(self):
        num_vars, clauses = parse_dimacs("1 2 0\n-2 0\n")
        assert num_vars == 2
        assert clauses == [[1, 2], [-2]]

    def test_num_vars_grows_with_literals(self):
        num_vars, _ = parse_dimacs("p cnf 2 1\n1 9 0\n")
        assert num_vars == 9

    def test_malformed_header_rejected(self):
        with pytest.raises(SolverError):
            parse_dimacs("p cnf x\n1 0\n")

    def test_unterminated_final_clause(self):
        _, clauses = parse_dimacs("p cnf 2 1\n1 2\n")
        assert clauses == [[1, 2]]


class TestLoadAndWrite:
    def test_load_into_solver(self, tmp_path):
        path = tmp_path / "formula.cnf"
        path.write_text("p cnf 2 2\n1 2 0\n-1 0\n")
        solver = load_dimacs(path)
        assert solver.solve() is True
        assert solver.model_value(2) is True

    def test_write_and_reload(self, tmp_path):
        cnf = CNF([[1, -3], [2]])
        path = tmp_path / "out.cnf"
        write_dimacs(cnf, path)
        num_vars, clauses = parse_dimacs(path.read_text())
        assert num_vars == 3
        assert sorted(map(sorted, clauses)) == sorted(map(sorted, [[1, -3], [2]]))

    def test_unsat_file(self, tmp_path):
        path = tmp_path / "unsat.cnf"
        path.write_text("p cnf 1 2\n1 0\n-1 0\n")
        assert load_dimacs(path).solve() is False
