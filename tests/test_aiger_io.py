"""Tests for AIGER reading and writing (ASCII and binary)."""

import pytest

from repro.aiger import (
    AIG,
    AigerError,
    parse_aiger,
    read_aiger,
    to_aag_string,
    write_aag,
    write_aig,
)
from repro.aiger.writer import to_aig_bytes
from repro.benchgen import token_ring, fifo_controller


def _example_aig():
    aig = AIG(comment="example")
    enable = aig.add_input("enable")
    latch = aig.add_latch(init=0, name="state")
    aig.set_latch_next(latch, aig.xor_gate(latch, enable))
    aig.add_bad(latch)
    aig.add_output(aig.negate(latch))
    return aig


def _equivalent_behaviour(a, b, steps=6):
    """Compare two AIGs by simulating the same input sequence."""
    assert a.num_inputs == b.num_inputs
    assert a.num_latches == b.num_latches
    sequence_a = [
        {lit: bool((step + i) % 2) for i, lit in enumerate(a.inputs)}
        for step in range(steps)
    ]
    sequence_b = [
        {lit: bool((step + i) % 2) for i, lit in enumerate(b.inputs)}
        for step in range(steps)
    ]
    trace_a = a.simulate(sequence_a)
    trace_b = b.simulate(sequence_b)
    for ra, rb in zip(trace_a, trace_b):
        assert ra["bads"] == rb["bads"]
        assert ra["outputs"] == rb["outputs"]


class TestAsciiFormat:
    def test_roundtrip_preserves_structure(self):
        aig = _example_aig()
        parsed = parse_aiger(to_aag_string(aig))
        assert parsed.num_inputs == aig.num_inputs
        assert parsed.num_latches == aig.num_latches
        assert parsed.num_ands == aig.num_ands
        assert parsed.bads == aig.bads
        assert parsed.outputs == aig.outputs

    def test_roundtrip_preserves_behaviour(self):
        aig = _example_aig()
        _equivalent_behaviour(aig, parse_aiger(to_aag_string(aig)))

    def test_symbol_table_roundtrip(self):
        aig = _example_aig()
        parsed = parse_aiger(to_aag_string(aig))
        assert parsed.input_name(parsed.inputs[0]) == "enable"
        assert parsed.latches[0].name == "state"

    def test_comment_roundtrip(self):
        parsed = parse_aiger(to_aag_string(_example_aig()))
        assert parsed.comment == "example"

    def test_write_and_read_file(self, tmp_path):
        aig = _example_aig()
        path = tmp_path / "model.aag"
        write_aag(aig, path)
        _equivalent_behaviour(aig, read_aiger(path))

    def test_header_counts(self):
        text = to_aag_string(_example_aig())
        header = text.splitlines()[0].split()
        assert header[0] == "aag"
        assert header[2] == "1"  # inputs
        assert header[3] == "1"  # latches

    def test_latch_reset_values(self):
        aig = AIG()
        l0 = aig.add_latch(init=0)
        l1 = aig.add_latch(init=1)
        lx = aig.add_latch(init=None)
        for latch in (l0, l1, lx):
            aig.set_latch_next(latch, latch)
        aig.add_output(l0)
        parsed = parse_aiger(to_aag_string(aig))
        assert parsed.latches[0].init == 0
        assert parsed.latches[1].init == 1
        assert parsed.latches[2].init is None

    def test_not_aiger_rejected(self):
        with pytest.raises(AigerError):
            parse_aiger("hello world")

    def test_malformed_header_rejected(self):
        with pytest.raises(AigerError):
            parse_aiger("aag 1\n")

    def test_truncated_document_rejected(self):
        with pytest.raises(AigerError):
            parse_aiger("aag 3 1 1 1 0\n2\n")


class TestBinaryFormat:
    def test_roundtrip_behaviour(self):
        aig = _example_aig()
        parsed = parse_aiger(to_aig_bytes(aig))
        _equivalent_behaviour(aig, parsed)

    def test_roundtrip_of_generated_benchmarks(self):
        for case in (token_ring(4), fifo_controller(3)):
            parsed = parse_aiger(to_aig_bytes(case.aig))
            _equivalent_behaviour(case.aig, parsed)

    def test_write_and_read_file(self, tmp_path):
        aig = _example_aig()
        path = tmp_path / "model.aig"
        write_aig(aig, path)
        _equivalent_behaviour(aig, read_aiger(path))

    def test_binary_is_smaller_than_ascii_for_large_models(self):
        case = token_ring(10)
        assert len(to_aig_bytes(case.aig)) < len(to_aag_string(case.aig).encode())

    def test_ascii_and_binary_agree(self):
        aig = _example_aig()
        from_ascii = parse_aiger(to_aag_string(aig))
        from_binary = parse_aiger(to_aig_bytes(aig))
        _equivalent_behaviour(from_ascii, from_binary)
