"""Cooperative portfolio: sharing races, teardown hygiene, seeding.

Three contracts pinned here:

* a sharing race returns the same verdict as a non-sharing race and
  reports its bus accounting (transport, per-member counters);
* killing the losers leaks nothing — every shm segment the race created
  is gone afterwards and no member process survives;
* ``--seed`` is deterministic end to end: the same seed reproduces a
  byte-identical evaluation manifest (modulo wall-clock fields), seeded
  kernels are self-consistent, and seed 0 is exactly the unseeded order.
"""

import glob
import json
import multiprocessing
import os

import pytest

from repro.aiger import write_aag
from repro.benchgen import modular_counter, token_ring
from repro.cli import main
from repro.core.options import IC3Options
from repro.core.result import CheckResult
from repro.engines.portfolio import PortfolioEngine, PortfolioOptions
from repro.harness.configs import EngineConfig, apply_seed
from repro.harness.manifest import build_manifest
from repro.harness.runner import BenchmarkRunner
from repro.sat.arena import ArenaSolver
from repro.sat.solver import Solver


def _shm_segments():
    if not os.path.isdir("/dev/shm"):
        return None
    return set(glob.glob("/dev/shm/psm_*"))


class TestSharingRace:
    def test_sharing_race_same_verdict_with_accounting(self):
        case = modular_counter(3, modulus=6, bad_value=7)
        shared = PortfolioEngine(
            case.aig,
            engines=("ic3-pl", "ic3", "bmc", "kind"),
            portfolio_options=PortfolioOptions(share=True),
        ).check(time_limit=60)
        solo = PortfolioEngine(
            case.aig,
            engines=("ic3-pl", "ic3", "bmc", "kind"),
            portfolio_options=PortfolioOptions(share=False),
        ).check(time_limit=60)

        assert shared.result == solo.result == CheckResult.SAFE
        assert solo.sharing is None
        assert shared.sharing is not None
        assert shared.sharing["transport"] in ("shm", "queue")
        assert shared.sharing["bus_published"] >= 0
        assert shared.winner in shared.sharing["members"]
        winner_counters = shared.sharing["members"][shared.winner]
        assert set(winner_counters) == {
            "lemmas_published",
            "lemmas_received",
            "lemmas_validated",
            "lemmas_rejected",
            "lemmas_imported",
            "bus_overflows",
        }

    def test_single_member_never_opens_a_bus(self):
        outcome = PortfolioEngine(
            token_ring(3).aig, engines=("ic3",),
            portfolio_options=PortfolioOptions(share=True),
        ).check(time_limit=60)
        assert outcome.result == CheckResult.SAFE
        assert outcome.sharing is None

    def test_queue_transport_also_races(self):
        outcome = PortfolioEngine(
            token_ring(3).aig,
            engines=("ic3", "bmc"),
            portfolio_options=PortfolioOptions(share=True, transport="queue"),
        ).check(time_limit=60)
        assert outcome.result == CheckResult.SAFE
        assert outcome.sharing is not None
        assert outcome.sharing["transport"] == "queue"


class TestTeardown:
    def test_no_shm_or_process_leak_after_race(self):
        before = _shm_segments()
        children_before = {p.pid for p in multiprocessing.active_children()}
        for _ in range(3):
            outcome = PortfolioEngine(
                modular_counter(3, modulus=6, bad_value=7).aig,
                engines=("ic3-pl", "bmc", "kind"),
                portfolio_options=PortfolioOptions(share=True),
            ).check(time_limit=60)
            assert outcome.solved
        for proc in multiprocessing.active_children():
            if proc.pid not in children_before:
                proc.join(timeout=5)
        children_after = {
            p.pid for p in multiprocessing.active_children() if p.is_alive()
        }
        assert children_after <= children_before
        after = _shm_segments()
        if before is not None:
            assert after - before == set()

    def test_no_leak_when_losers_are_killed_midway(self):
        # BMC wins UNSAFE quickly; the IC3 members are killed while still
        # holding open bus ports.  The parent must still unlink cleanly.
        before = _shm_segments()
        case = modular_counter(4, modulus=14, bad_value=3)
        outcome = PortfolioEngine(
            case.aig,
            engines=("ic3", "ic3-pl", "bmc"),
            portfolio_options=PortfolioOptions(share=True),
        ).check(time_limit=60)
        assert outcome.result == CheckResult.UNSAFE
        after = _shm_segments()
        if before is not None:
            assert after - before == set()


SEED_CASES = [token_ring(3), modular_counter(3, modulus=6, bad_value=7)]


def _seeded_manifest(seed):
    configs = apply_seed(
        [EngineConfig(name="ic3-seeded", options=IC3Options())], seed
    )
    suite_result = BenchmarkRunner(
        SEED_CASES, configs, timeout=60.0, jobs=1, validate=True
    ).run()
    return build_manifest(
        suite_result, suite="seeded", jobs=1, validate=True, configs=configs
    )


TIMING_FIELDS = {
    "runtime",
    "penalized_runtime",
    "sat_time",
    "time_total",
    "time_generalization",
    "time_prediction",
    "time_propagation",
    "time_import_validation",
    "par1_time",
    "phase_times",
    "wall_clock",
    "created_at",
}


def _normalize(node):
    if isinstance(node, dict):
        return {
            key: (0 if key in TIMING_FIELDS else _normalize(value))
            for key, value in node.items()
        }
    if isinstance(node, list):
        return [_normalize(item) for item in node]
    return node


class TestSeedDeterminism:
    def test_same_seed_byte_identical_manifest(self):
        one = json.dumps(_normalize(_seeded_manifest(7)), sort_keys=True)
        two = json.dumps(_normalize(_seeded_manifest(7)), sort_keys=True)
        assert one == two
        assert json.loads(one)["configs"]["ic3-seeded"]["seed"] == 7

    def test_seed_zero_matches_unseeded(self):
        zero = json.dumps(_normalize(_seeded_manifest(0)), sort_keys=True)
        unseeded = json.dumps(_normalize(_seeded_manifest(None)), sort_keys=True)
        assert zero == unseeded

    @pytest.mark.parametrize("solver_cls", [Solver, ArenaSolver])
    def test_seeded_kernel_is_reproducible(self, solver_cls):
        def run(seed):
            solver = solver_cls()
            solver.set_seed(seed)
            # A loose pigeonhole-ish instance with many solutions, so the
            # model found depends on the branching order.
            n = 12
            for var in range(1, n + 1):
                solver.ensure_var(var)
            for a in range(1, n, 2):
                solver.add_clause([a, a + 1])
            for a in range(1, n - 2, 3):
                solver.add_clause([-a, -(a + 2)])
            assert solver.solve([])
            model = solver.get_model()
            return [model[v] for v in range(1, n + 1)]

        assert run(5) == run(5)
        assert run(1) == run(1)


class TestCLISwitches:
    @pytest.fixture()
    def safe_model(self, tmp_path):
        path = tmp_path / "safe.aag"
        write_aag(token_ring(3).aig, path)
        return str(path)

    def test_check_seed_flag(self, safe_model, capsys):
        assert main(["check", safe_model, "--seed", "3"]) == 0
        assert "safe" in capsys.readouterr().out

    def test_portfolio_share_flags(self, safe_model, capsys):
        assert main(
            ["check", safe_model, "--engine", "portfolio", "--portfolio-share"]
        ) == 0
        assert "safe" in capsys.readouterr().out
        assert main(
            ["check", safe_model, "--engine", "portfolio", "--no-portfolio-share"]
        ) == 0
        assert "safe" in capsys.readouterr().out
