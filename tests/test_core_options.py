"""Tests for IC3Options profiles and validation."""

import dataclasses

import pytest

from repro.core import IC3Options
from repro.core.options import GeneralizationStrategy, LiteralOrdering


class TestDefaults:
    def test_prediction_off_by_default(self):
        assert IC3Options().enable_prediction is False

    def test_defaults_are_valid(self):
        IC3Options().validate()

    def test_with_prediction_returns_copy(self):
        base = IC3Options()
        predicted = base.with_prediction()
        assert predicted.enable_prediction is True
        assert base.enable_prediction is False
        assert predicted is not base

    def test_with_prediction_preserves_other_fields(self):
        base = IC3Options(literal_ordering=LiteralOrdering.ACTIVITY, ctg_depth=2)
        predicted = base.with_prediction()
        assert predicted.literal_ordering == LiteralOrdering.ACTIVITY
        assert predicted.ctg_depth == 2


class TestProfiles:
    def test_all_profiles_valid(self):
        for profile in (
            IC3Options.profile_ic3_a(),
            IC3Options.profile_ic3_b(),
            IC3Options.profile_cav23(),
            IC3Options.profile_pdr(),
        ):
            profile.validate()

    def test_profiles_differ(self):
        a = IC3Options.profile_ic3_a()
        b = IC3Options.profile_ic3_b()
        assert a != b

    def test_cav23_uses_parent_ordering(self):
        assert (
            IC3Options.profile_cav23().generalization
            == GeneralizationStrategy.PARENT_ORDERED
        )

    def test_pdr_uses_ctg(self):
        assert IC3Options.profile_pdr().generalization == GeneralizationStrategy.CTG

    def test_no_profile_enables_prediction(self):
        for profile in (
            IC3Options.profile_ic3_a(),
            IC3Options.profile_ic3_b(),
            IC3Options.profile_cav23(),
            IC3Options.profile_pdr(),
        ):
            assert profile.enable_prediction is False


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("max_prediction_candidates", 0),
            ("mic_max_rounds", 0),
            ("ctg_depth", -1),
            ("max_ctgs", -1),
            ("max_frames", 0),
            ("solver_rebuild_interval", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        options = dataclasses.replace(IC3Options(), **{field: value})
        with pytest.raises(ValueError):
            options.validate()

    def test_enums_accept_string_values(self):
        assert GeneralizationStrategy("ctg") == GeneralizationStrategy.CTG
        assert LiteralOrdering("activity") == LiteralOrdering.ACTIVITY
