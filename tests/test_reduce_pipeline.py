"""Integration tests: pipeline composition and witness lift-back."""

import pytest

from repro.aiger import AIG
from repro.benchgen import (
    default_suite,
    monitored_counter,
    reduction_suite,
    shadowed_ring,
)
from repro.core import IC3, BMC, CheckResult, IC3Options
from repro.core.invariant import check_certificate, check_counterexample
from repro.engines import create_engine
from repro.reduce import (
    DEFAULT_PASSES,
    ReductionError,
    ReductionPipeline,
    available_passes,
    reduce_aig,
    register_pass,
    resolve_pass,
)


class TestRegistry:
    def test_default_passes_are_registered(self):
        assert set(DEFAULT_PASSES) <= set(available_passes())

    def test_resolve_unknown_pass(self):
        with pytest.raises(KeyError):
            resolve_pass("no-such-pass")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReductionError):
            register_pass("coi", type("Fake", (), {}))

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ReductionError):
            ReductionPipeline([])


class TestPipeline:
    def test_summary_shape(self):
        case = monitored_counter(3, noise=4)
        result = reduce_aig(case.aig)
        summary = result.summary()
        assert summary["passes"] == list(DEFAULT_PASSES)
        assert summary["original"]["latches"] == case.aig.num_latches
        assert summary["reduced"]["latches"] == result.aig.num_latches
        assert len(summary["per_pass"]) == len(DEFAULT_PASSES)
        assert result.reduced

    def test_all_passes_contribute_on_soc_case(self):
        case = monitored_counter(4, noise=6)
        result = reduce_aig(case.aig)
        by_name = {}
        for info in result.infos:
            by_name.setdefault(info.pass_name, []).append(info)
        assert by_name["coi"][0].details["removed_latches"] >= 6
        assert any(i.details.get("constant_latches") for i in by_name["ternary"])
        assert any(i.details.get("merged_latches") for i in by_name["merge"])

    def test_custom_pass_list(self):
        case = monitored_counter(3, noise=4)
        result = reduce_aig(case.aig, passes=["coi"])
        assert [info.pass_name for info in result.infos] == ["coi"]
        # COI alone keeps the shadow and strap latches.
        assert result.aig.num_latches > reduce_aig(case.aig).aig.num_latches

    def test_never_grows_on_default_suite(self):
        for case in default_suite():
            result = reduce_aig(case.aig)
            assert result.aig.num_latches <= case.aig.num_latches, case.name
            assert result.aig.num_ands <= case.aig.num_ands, case.name
            assert result.aig.num_inputs <= case.aig.num_inputs, case.name

    def test_shrinks_every_nontrivial_cone_case(self):
        """Acceptance: every suite case with reducible structure shrinks."""
        for case in default_suite() + reduction_suite():
            if case.family != "soc":
                continue
            result = reduce_aig(case.aig)
            assert result.aig.num_latches < case.aig.num_latches, case.name
            assert result.aig.num_ands < case.aig.num_ands, case.name


class TestWitnessLiftBack:
    @pytest.mark.parametrize("factory", [
        lambda: monitored_counter(3, noise=5, safe=True),
        lambda: shadowed_ring(4, noise=4, safe=True),
    ], ids=["moncnt", "shring"])
    def test_certificate_lifts_to_original(self, factory):
        case = factory()
        result = reduce_aig(case.aig)
        outcome = IC3(
            result.aig, IC3Options().with_prediction(),
            property_index=result.property_index,
        ).check(time_limit=60)
        assert outcome.result == CheckResult.SAFE
        lifted = result.lift_certificate(outcome.certificate)
        assert check_certificate(case.aig, lifted)

    @pytest.mark.parametrize("factory", [
        lambda: monitored_counter(3, noise=5, safe=False),
        lambda: shadowed_ring(4, noise=4, safe=False),
    ], ids=["moncnt", "shring"])
    def test_trace_lifts_to_original(self, factory):
        case = factory()
        result = reduce_aig(case.aig)
        outcome = IC3(
            result.aig, IC3Options().with_prediction(),
            property_index=result.property_index,
        ).check(time_limit=60)
        assert outcome.result == CheckResult.UNSAFE
        lifted = result.lift_trace(outcome.trace)
        assert check_counterexample(case.aig, lifted)
        assert lifted.depth == outcome.trace.depth

    def test_bmc_trace_lifts_to_original(self):
        case = shadowed_ring(4, noise=4, safe=False)
        result = reduce_aig(case.aig)
        outcome = BMC(result.aig, property_index=result.property_index).check(
            max_depth=10
        )
        assert outcome.result == CheckResult.UNSAFE
        lifted = result.lift_trace(outcome.trace)
        assert check_counterexample(case.aig, lifted)

    def test_certificate_valid_even_when_model_vanishes(self):
        """Merging can fold the bad cone to constant false; the lifted
        invariant must still explain that to the original model."""
        aig = AIG()
        tick = aig.add_input()
        first = aig.add_latch(init=0)
        second = aig.add_latch(init=0)
        aig.set_latch_next(first, aig.xor_gate(first, tick))
        aig.set_latch_next(second, aig.xor_gate(second, tick))
        aig.add_bad(aig.xor_gate(first, second))
        result = reduce_aig(aig)
        assert result.aig.num_latches == 0
        outcome = IC3(result.aig, property_index=result.property_index).check()
        assert outcome.result == CheckResult.SAFE
        lifted = result.lift_certificate(outcome.certificate)
        assert check_certificate(aig, lifted)

    def test_lift_outcome_keeps_verdict_and_stats(self):
        case = monitored_counter(3, noise=5, safe=False)
        result = reduce_aig(case.aig)
        outcome = IC3(
            result.aig, property_index=result.property_index
        ).check(time_limit=60)
        lifted = result.lift_outcome(outcome)
        assert lifted.result == outcome.result
        assert lifted.stats is outcome.stats
        assert lifted.trace is not outcome.trace


class TestEngineIntegration:
    """Reduction is on by default in every registered engine."""

    @pytest.mark.parametrize("kind", ["ic3", "ic3-pl", "bmc", "kind"])
    def test_outcome_records_reduction(self, kind):
        case = monitored_counter(3, noise=5, safe=False)
        outcome = create_engine(kind, case.aig).check(time_limit=30)
        assert outcome.reduction is not None
        assert outcome.reduction["reduced"]["latches"] < case.aig.num_latches
        if outcome.trace is not None:
            assert check_counterexample(case.aig, outcome.trace)

    def test_opt_out(self):
        case = monitored_counter(3, noise=5)
        outcome = create_engine("ic3-pl", case.aig, reduce=False).check(time_limit=30)
        assert outcome.reduction is None
        assert outcome.result == CheckResult.SAFE

    def test_engine_passes_override(self):
        case = monitored_counter(3, noise=5)
        engine = create_engine("ic3-pl", case.aig, passes=["coi"])
        assert engine.reduction.summary()["passes"] == ["coi"]

    def test_verdicts_match_with_and_without_reduction(self):
        """Acceptance: end-to-end verdicts unchanged by reduction."""
        sample = [c for c in default_suite() if c.family == "soc"]
        assert sample
        for case in sample:
            with_reduce = create_engine("ic3-pl", case.aig).check(time_limit=60)
            without = create_engine("ic3-pl", case.aig, reduce=False).check(
                time_limit=60
            )
            assert with_reduce.result == without.result == case.expected, case.name
            if with_reduce.trace is not None:
                assert check_counterexample(case.aig, with_reduce.trace)
            if with_reduce.certificate is not None:
                assert check_certificate(case.aig, with_reduce.certificate)

    def test_portfolio_lifts_winner_witness(self):
        case = shadowed_ring(3, noise=4, safe=False)
        outcome = create_engine("portfolio", case.aig).check(time_limit=30)
        assert outcome.result == CheckResult.UNSAFE
        assert outcome.winner
        assert outcome.reduction is not None
        assert check_counterexample(case.aig, outcome.trace)
