"""Liveness engines: l2s and k-liveness compile, prove, refute, lift."""

import pytest

from repro.benchgen.liveness import (
    arbiter_live,
    handshake_live,
    token_ring_live,
)
from repro.core.invariant import CertificateError, check_certificate
from repro.core.result import CheckResult
from repro.engines import create_engine
from repro.props import (
    TransformError,
    check_lasso,
    check_liveness_certificate,
    kliveness,
    liveness_to_safety,
)

pytestmark = pytest.mark.liveness


class TestL2SCompiler:
    def test_compiled_circuit_shape(self):
        case = token_ring_live(3, safe=True)
        result = liveness_to_safety(case.aig, 0)
        assert len(result.aig.bads) == 1
        assert result.aig.num_inputs == case.aig.num_inputs + 1  # + save oracle
        # saved + one shadow per original latch + one seen per tracked literal
        assert result.aux_latches == 1 + case.aig.num_latches + result.num_tracked
        assert result.aig.justice == []  # compiled away

    def test_rejects_missing_justice(self):
        case = token_ring_live(3, safe=True)
        with pytest.raises(TransformError):
            liveness_to_safety(case.aig, 5)

    def test_fairness_is_tracked(self):
        case = arbiter_live(2, safe=True)
        result = liveness_to_safety(case.aig, 0)
        assert result.num_tracked == len(case.aig.justice[0]) + len(case.aig.fairness)


class TestL2SEngine:
    @pytest.mark.parametrize("inner", ["ic3-pl", "bmc"])
    def test_refutes_buggy_ring_with_lifted_lasso(self, inner):
        case = token_ring_live(3, safe=False)
        outcome = create_engine("l2s", case.aig, inner=inner).check(time_limit=60)
        assert outcome.result == CheckResult.UNSAFE
        assert outcome.trace is None  # the raw safety trace is not exposed
        assert outcome.lasso is not None
        assert outcome.lasso.loop_length >= 1
        assert check_lasso(case.aig, outcome.lasso)

    def test_proves_safe_ring(self):
        case = token_ring_live(3, safe=True)
        outcome = create_engine("l2s", case.aig).check(time_limit=60)
        assert outcome.result == CheckResult.SAFE
        assert outcome.certificate is not None
        assert check_liveness_certificate(
            case.aig, outcome.certificate, justice_index=0, method="l2s"
        )

    def test_transformation_summary_recorded(self):
        case = handshake_live(safe=True)
        outcome = create_engine("l2s", case.aig).check(time_limit=60)
        assert outcome.transformation["kind"] == "l2s"
        assert outcome.transformation["inner"] == "ic3-pl"

    def test_works_without_reduction(self):
        case = token_ring_live(3, safe=False)
        outcome = create_engine("l2s", case.aig, reduce=False).check(time_limit=60)
        assert outcome.result == CheckResult.UNSAFE
        assert check_lasso(case.aig, outcome.lasso)

    def test_lasso_validation_rejects_corruption(self):
        case = token_ring_live(3, safe=False)
        outcome = create_engine("l2s", case.aig).check(time_limit=60)
        lasso = outcome.lasso
        # A loop from step 0 cannot close: the monitor latch is 0 at reset
        # but must be 1 inside the loop, and it is absorbing.
        lasso.loop_start = 0
        with pytest.raises(CertificateError):
            check_lasso(case.aig, lasso)


class TestKLivenessCompiler:
    def test_bad_per_bound(self):
        case = token_ring_live(3, safe=True)
        compiled = kliveness(case.aig, 0, max_k=5)
        assert len(compiled.aig.bads) == 6
        assert compiled.aig.justice == []

    def test_counter_width_scales_with_bound(self):
        case = token_ring_live(3, safe=True)
        small = kliveness(case.aig, 0, max_k=1)
        large = kliveness(case.aig, 0, max_k=40)
        assert large.counter_bits > small.counter_bits


class TestKLivenessEngine:
    @pytest.mark.parametrize(
        "case_factory",
        [
            lambda: token_ring_live(3, safe=True),
            lambda: token_ring_live(4, safe=True),
            lambda: arbiter_live(2, safe=True),
            lambda: handshake_live(safe=True),
        ],
    )
    def test_proves_safe_families(self, case_factory):
        case = case_factory()
        outcome = create_engine("klive", case.aig, max_k=12).check(time_limit=120)
        assert outcome.result == CheckResult.SAFE
        k = outcome.transformation["k"]
        assert 0 <= k <= 12
        assert check_liveness_certificate(
            case.aig,
            outcome.certificate,
            justice_index=0,
            method="klive",
            max_k=12,
            k=k,
        )

    def test_cannot_refute_returns_unknown(self):
        case = token_ring_live(3, safe=False)
        outcome = create_engine("klive", case.aig, max_k=2).check(time_limit=60)
        assert outcome.result == CheckResult.UNKNOWN
        assert "exhausted" in outcome.reason

    def test_certificate_fails_on_tighter_bound(self):
        # The proof of "at most k ticks" cannot double as a proof of
        # "at most k-1 ticks": count == k is genuinely reachable.
        case = token_ring_live(3, safe=True)
        outcome = create_engine("klive", case.aig, max_k=12).check(time_limit=120)
        k = outcome.transformation["k"]
        assert k >= 1  # k = 0 is refuted on this family (one tick happens)
        with pytest.raises(CertificateError):
            check_liveness_certificate(
                case.aig,
                outcome.certificate,
                justice_index=0,
                method="klive",
                max_k=12,
                k=k - 1,
            )


class TestConstrainedSafetySoundness:
    """The liveness monitors exposed an IC3+constraints trace bug; keep it dead."""

    def test_ic3_traces_respect_constraints(self):
        # On the buggy ring's l2s circuit IC3 must produce a constraint-
        # respecting counterexample (validated by simulation).
        case = token_ring_live(3, safe=False)
        compiled = liveness_to_safety(case.aig, 0)
        from repro.core.ic3 import IC3
        from repro.core.invariant import check_counterexample

        outcome = IC3(compiled.aig).check(time_limit=60)
        assert outcome.result == CheckResult.UNSAFE
        assert check_counterexample(compiled.aig, outcome.trace)

    def test_ic3_does_not_fabricate_counterexamples(self):
        # The safe ring's l2s circuit has no constrained path to bad.
        case = token_ring_live(3, safe=True)
        compiled = liveness_to_safety(case.aig, 0)
        from repro.core.ic3 import IC3

        outcome = IC3(compiled.aig).check(time_limit=60)
        assert outcome.result == CheckResult.SAFE
        assert check_certificate(compiled.aig, outcome.certificate)
