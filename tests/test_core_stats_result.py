"""Tests for statistics (Table 2 rates) and result containers."""

import pytest

from repro.core import CheckOutcome, CheckResult, Certificate, CounterexampleTrace
from repro.core.result import TraceStep
from repro.core.stats import IC3Stats
from repro.logic import Clause, Cube


class TestSuccessRates:
    def test_rates_none_when_no_activity(self):
        stats = IC3Stats()
        assert stats.sr_lp is None
        assert stats.sr_fp is None
        assert stats.sr_adv is None

    def test_sr_lp_definition(self):
        stats = IC3Stats(prediction_queries=10, prediction_successes=4)
        assert stats.sr_lp == pytest.approx(0.4)

    def test_sr_fp_definition(self):
        stats = IC3Stats(generalizations=20, parent_lemma_hits=8)
        assert stats.sr_fp == pytest.approx(0.4)

    def test_sr_adv_definition(self):
        stats = IC3Stats(generalizations=20, prediction_successes=5)
        assert stats.sr_adv == pytest.approx(0.25)

    def test_sr_adv_never_exceeds_sr_fp_in_engine_semantics(self):
        # Not a structural guarantee of the dataclass, but the engine can only
        # succeed on a prediction when it found a failed-push parent first.
        stats = IC3Stats(
            generalizations=10, parent_lemma_hits=6, prediction_successes=4
        )
        assert stats.sr_adv <= stats.sr_fp

    def test_as_dict_contains_rates_and_counters(self):
        stats = IC3Stats(prediction_queries=2, prediction_successes=1, generalizations=4)
        data = stats.as_dict()
        assert data["prediction_queries"] == 2
        assert data["sr_lp"] == pytest.approx(0.5)
        assert data["sr_adv"] == pytest.approx(0.25)

    def test_merge_adds_counters(self):
        a = IC3Stats(sat_calls=3, generalizations=1, time_total=1.5)
        b = IC3Stats(sat_calls=4, generalizations=2, time_total=0.5)
        merged = a.merge(b)
        assert merged.sat_calls == 7
        assert merged.generalizations == 3
        assert merged.time_total == pytest.approx(2.0)


class TestResultContainers:
    def test_check_result_solved(self):
        assert CheckResult.SAFE.solved
        assert CheckResult.UNSAFE.solved
        assert not CheckResult.UNKNOWN.solved

    def test_certificate_to_cnf(self):
        certificate = Certificate(clauses=[Clause([1, 2]), Clause([-3])])
        cnf = certificate.to_cnf()
        assert len(cnf) == 2
        assert len(certificate) == 2

    def test_trace_depth_and_inputs(self):
        trace = CounterexampleTrace(
            steps=[
                TraceStep(state=Cube([1]), inputs={2: True}),
                TraceStep(state=Cube([-1]), inputs={2: False}),
            ]
        )
        assert len(trace) == 2
        assert trace.depth == 1
        assert trace.input_sequence() == [{2: True}, {2: False}]

    def test_empty_trace_depth(self):
        assert CounterexampleTrace(steps=[]).depth == 0

    def test_outcome_summary_safe(self):
        outcome = CheckOutcome(
            result=CheckResult.SAFE,
            runtime=1.25,
            certificate=Certificate(clauses=[Clause([1])]),
            engine="ic3",
        )
        summary = outcome.summary()
        assert "safe" in summary
        assert "1 clauses" in summary

    def test_outcome_summary_unsafe(self):
        outcome = CheckOutcome(
            result=CheckResult.UNSAFE,
            trace=CounterexampleTrace(
                steps=[TraceStep(state=Cube([1]), inputs={})]
            ),
            engine="ic3-pl",
        )
        assert "counterexample" in outcome.summary()

    def test_outcome_summary_unknown_includes_reason(self):
        outcome = CheckOutcome(result=CheckResult.UNKNOWN, reason="time limit reached")
        assert "time limit reached" in outcome.summary()
        assert not outcome.solved
