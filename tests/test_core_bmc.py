"""Tests for the bounded model checker."""

import pytest

from repro.benchgen import (
    combination_lock,
    counter_overflow,
    johnson_counter,
    lfsr,
    modular_counter,
    token_ring,
)
from repro.core import BMC, CheckResult, check_counterexample


class TestCounterexampleSearch:
    @pytest.mark.parametrize(
        "case_factory",
        [
            lambda: modular_counter(3, modulus=8, bad_value=5),
            lambda: combination_lock([1, 2, 3]),
            lambda: johnson_counter(5, safe=False),
            lambda: lfsr(4, safe=False, unsafe_depth=6),
            lambda: counter_overflow(3, safe=False),
            lambda: token_ring(4, safe=False),
        ],
        ids=lambda f: f().name,
    )
    def test_finds_counterexample_at_expected_depth(self, case_factory):
        case = case_factory()
        outcome = BMC(case.aig).check(max_depth=case.expected_depth + 3)
        assert outcome.result == CheckResult.UNSAFE
        assert outcome.trace is not None
        # BMC counterexamples are shortest, so the depth must match exactly.
        assert outcome.trace.depth == case.expected_depth
        assert check_counterexample(case.aig, outcome.trace)

    def test_unknown_when_bound_too_small(self):
        case = modular_counter(3, modulus=8, bad_value=5)
        outcome = BMC(case.aig).check(max_depth=4)
        assert outcome.result == CheckResult.UNKNOWN
        assert "depth" in outcome.reason

    def test_unknown_for_safe_design(self):
        outcome = BMC(token_ring(4).aig).check(max_depth=8)
        assert outcome.result == CheckResult.UNKNOWN

    def test_bad_initial_state_found_at_depth_zero(self):
        case = modular_counter(3, modulus=8, bad_value=0)
        outcome = BMC(case.aig).check(max_depth=3)
        assert outcome.result == CheckResult.UNSAFE
        assert outcome.trace.depth == 0

    def test_check_depth_exact(self):
        case = modular_counter(3, modulus=8, bad_value=5)
        bmc = BMC(case.aig)
        assert bmc.check_depth(4) is False
        assert bmc.check_depth(5) is True

    def test_time_limit_respected(self):
        case = combination_lock([1, 2, 3, 1, 2, 3, 1, 2], symbol_bits=2)
        outcome = BMC(case.aig).check(max_depth=200, time_limit=0.0)
        assert outcome.result == CheckResult.UNKNOWN
        assert "time limit" in outcome.reason

    def test_runtime_and_stats_reported(self):
        case = modular_counter(3, modulus=8, bad_value=2)
        outcome = BMC(case.aig).check(max_depth=5)
        assert outcome.runtime >= 0
        assert outcome.stats.sat_calls >= 3
        assert outcome.engine == "bmc"
