"""Tests for the process-pool harness: hard timeouts, jobs parity, indexes, manifest."""

import json
import time

import pytest

from repro.benchgen import modular_counter, token_ring
from repro.core import CheckOutcome, CheckResult, IC3Options
from repro.engines import register_engine
from repro.harness import (
    BenchmarkRunner,
    CaseResult,
    EngineConfig,
    SuiteResult,
    build_manifest,
    map_with_hard_timeout,
    success_rate_table,
    summary_table,
    write_manifest,
)
from repro.harness.manifest import MANIFEST_SCHEMA
from repro.harness.pool import default_grace, resolve_jobs


class _HangingEngine:
    """Simulates an engine stuck inside a single SAT call (ignores budgets)."""

    name = "hanging"

    def __init__(self, aig, options=None, property_index=0, **_):
        pass

    def check(self, time_limit=None):
        time.sleep(120)
        return CheckOutcome(result=CheckResult.UNKNOWN, engine=self.name)


register_engine(
    "hanging-test", lambda aig, **kw: _HangingEngine(aig, **kw), overwrite=True
)

PARITY_CASES = [
    token_ring(3),
    token_ring(3, safe=False),
    modular_counter(3, modulus=6, bad_value=7),
]

PARITY_CONFIGS = [
    EngineConfig(name="IC3ref", options=IC3Options.profile_ic3_a()),
    EngineConfig(name="IC3ref-pl", options=IC3Options.profile_ic3_a().with_prediction()),
]


class TestPool:
    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1

    def test_grace_is_clamped(self):
        assert default_grace(0.01) == pytest.approx(0.2)
        assert default_grace(2.0) == pytest.approx(1.0)
        assert default_grace(100.0) == pytest.approx(5.0)

    def test_results_in_task_order(self):
        results = map_with_hard_timeout(
            _square, [3, 1, 2], timeout=10.0, jobs=3
        )
        assert [r.value for r in results] == [9, 1, 4]
        assert all(r.ok for r in results)

    def test_worker_exception_reported_not_raised(self):
        results = map_with_hard_timeout(_explode, ["boom"], timeout=10.0)
        assert not results[0].ok
        assert "RuntimeError" in results[0].error

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            map_with_hard_timeout(_square, [1], timeout=0)


def _square(x):
    return x * x


def _explode(message):
    raise RuntimeError(message)


class TestHardTimeout:
    def test_stuck_worker_killed_within_two_budgets(self):
        budget = 0.5
        runner = BenchmarkRunner(
            [token_ring(3)],
            [EngineConfig(name="hang", engine="hanging-test")],
            timeout=budget,
            jobs=1,
        )
        start = time.perf_counter()
        suite_result = runner.run()
        elapsed = time.perf_counter() - start
        result = suite_result.results[0]
        assert result.result == CheckResult.UNKNOWN
        assert result.timed_out
        assert result.penalized_runtime == budget
        # budget + grace (0.25 s) + fork/kill overhead stays under ~2x budget.
        assert elapsed < 2 * budget + 1.0

    def test_stuck_worker_does_not_delay_parallel_neighbors(self):
        cases = [token_ring(3)]
        configs = [
            EngineConfig(name="hang", engine="hanging-test"),
            EngineConfig(name="IC3ref", options=IC3Options.profile_ic3_a()),
        ]
        suite_result = BenchmarkRunner(cases, configs, timeout=1.0, jobs=2).run()
        assert suite_result.lookup("hang", "ring_n3_safe").timed_out
        assert suite_result.lookup("IC3ref", "ring_n3_safe").result == CheckResult.SAFE


class TestJobsParity:
    @pytest.fixture(scope="class")
    def runs(self):
        one = BenchmarkRunner(PARITY_CASES, PARITY_CONFIGS, timeout=30.0, jobs=1).run()
        four = BenchmarkRunner(PARITY_CASES, PARITY_CONFIGS, timeout=30.0, jobs=4).run()
        return one, four

    def test_same_ordering_and_verdicts(self, runs):
        one, four = runs

        def key(sr):
            return [(r.case_name, r.config_name, r.result) for r in sr.results]

        assert key(one) == key(four)
        assert one.configs() == four.configs()
        assert one.cases() == four.cases()

    def test_table1_identical_up_to_runtimes(self, runs):
        one, four = runs

        def strip(sr):
            table = summary_table(sr)
            return [
                [cell for i, cell in enumerate(row) if table.columns[i] != "Time(PAR1)"]
                for row in table.rows
            ]

        assert strip(one) == strip(four)

    def test_table2_byte_identical(self, runs):
        # Success rates depend only on deterministic engine statistics.
        one, four = runs
        assert success_rate_table(one).to_text() == success_rate_table(four).to_text()

    def test_no_wrong_results_either_way(self, runs):
        one, four = runs
        assert one.incorrect_results() == []
        assert four.incorrect_results() == []


class TestSuiteResultIndex:
    def _result(self, config, case, result=CheckResult.SAFE):
        return CaseResult(
            case_name=case, config_name=config, result=result, runtime=0.1, timeout=5.0
        )

    def test_add_maintains_index(self):
        sr = SuiteResult(timeout=5.0)
        sr.add(self._result("a", "x"))
        sr.add(self._result("a", "y"))
        sr.add(self._result("b", "x"))
        assert sr.lookup("a", "y") is sr.results[1]
        assert sr.lookup("b", "z") is None
        assert sr.configs() == ["a", "b"]
        assert sr.cases() == ["x", "y"]
        assert set(sr.by_case("x")) == {"a", "b"}
        assert len(sr.by_config("a")) == 2

    def test_constructor_indexes_existing_results(self):
        sr = SuiteResult(results=[self._result("a", "x")], timeout=5.0)
        assert sr.lookup("a", "x") is sr.results[0]

    def test_direct_mutation_triggers_lazy_rebuild(self):
        sr = SuiteResult(timeout=5.0)
        sr.results.append(self._result("a", "x"))
        assert sr.lookup("a", "x") is sr.results[0]
        sr.results.append(self._result("b", "x"))
        assert sr.by_case("x")["b"] is sr.results[1]

    def test_duplicate_pairs_keep_first_for_lookup(self):
        first = self._result("a", "x")
        second = self._result("a", "x", result=CheckResult.UNKNOWN)
        sr = SuiteResult(results=[first, second], timeout=5.0)
        assert sr.lookup("a", "x") is first
        assert len(sr.by_config("a")) == 2


class TestManifest:
    @pytest.fixture(scope="class")
    def suite_result(self):
        return BenchmarkRunner(
            PARITY_CASES, PARITY_CONFIGS[:1], timeout=30.0, jobs=2
        ).run()

    def test_manifest_contents(self, suite_result):
        manifest = build_manifest(
            suite_result, suite="unit", jobs=2, configs=PARITY_CONFIGS[:1]
        )
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["suite"] == "unit"
        assert manifest["jobs"] == 2
        assert manifest["num_cases"] == len(PARITY_CASES)
        assert len(manifest["results"]) == len(PARITY_CASES)
        assert manifest["totals"]["IC3ref"]["solved"] == len(PARITY_CASES)
        assert manifest["configs"]["IC3ref"]["engine"] == "ic3"
        for entry in manifest["results"]:
            assert entry["runtime"] <= entry["penalized_runtime"] + 1e-9

    def test_manifest_round_trips_as_json(self, suite_result, tmp_path):
        manifest = build_manifest(suite_result, suite="unit", jobs=2)
        path = tmp_path / "run.json"
        write_manifest(str(path), manifest)
        assert json.loads(path.read_text()) == json.loads(json.dumps(manifest))


class TestManifestV2:
    """Schema v2: winner, engine statistics and reduction sizes per result."""

    @pytest.fixture(scope="class")
    def soc_suite_result(self):
        from repro.benchgen import monitored_counter

        cases = [monitored_counter(3, noise=4, safe=False)]
        configs = [
            EngineConfig(name="Portfolio", engine="portfolio"),
            EngineConfig(name="IC3", engine="ic3"),
        ]
        return BenchmarkRunner(cases, configs, timeout=30.0, jobs=1).run()

    def test_winner_serialized(self, soc_suite_result):
        manifest = build_manifest(soc_suite_result, suite="unit")
        portfolio = next(
            r for r in manifest["results"] if r["config"] == "Portfolio"
        )
        assert portfolio["winner"] in ("ic3-pl", "bmc", "kind")
        plain = next(r for r in manifest["results"] if r["config"] == "IC3")
        assert plain["winner"] is None

    def test_stats_serialized(self, soc_suite_result):
        manifest = build_manifest(soc_suite_result, suite="unit")
        plain = next(r for r in manifest["results"] if r["config"] == "IC3")
        assert plain["stats"]["sat_calls"] > 0
        json.dumps(manifest)  # everything stays JSON-serializable

    def test_reduction_sizes_serialized(self, soc_suite_result):
        manifest = build_manifest(soc_suite_result, suite="unit", reduce=True)
        assert manifest["reduce"] is True
        for entry in manifest["results"]:
            reduction = entry["reduction"]
            assert reduction["original"]["latches"] > reduction["reduced"]["latches"]
            assert reduction["passes"]

    def test_reduction_none_when_disabled(self):
        suite_result = BenchmarkRunner(
            [token_ring(3)], PARITY_CONFIGS[:1], timeout=30.0, jobs=1, reduce=False
        ).run()
        manifest = build_manifest(suite_result, suite="unit", reduce=False)
        assert manifest["reduce"] is False
        assert all(entry["reduction"] is None for entry in manifest["results"])


class TestWorkerCrashes:
    def test_crash_is_recorded_not_raised(self):
        suite_result = BenchmarkRunner(
            [token_ring(3)],
            [EngineConfig(name="bad", engine="bmc", engine_kwargs={"max_depth": "oops"})],
            timeout=5.0,
            jobs=1,
        ).run()
        result = suite_result.results[0]
        assert result.result == CheckResult.UNKNOWN
        assert result.error is not None
        assert "TypeError" in result.error


class TestEngineKindsInHarness:
    def test_bmc_and_portfolio_configs(self):
        cases = [token_ring(3, safe=False)]
        configs = [
            EngineConfig(name="BMC", engine="bmc", engine_kwargs={"max_depth": 10}),
            EngineConfig(name="Portfolio", engine="portfolio"),
        ]
        suite_result = BenchmarkRunner(cases, configs, timeout=30.0, jobs=2).run()
        bmc = suite_result.lookup("BMC", "ring_n3_unsafe")
        portfolio = suite_result.lookup("Portfolio", "ring_n3_unsafe")
        assert bmc.result == CheckResult.UNSAFE
        assert portfolio.result == CheckResult.UNSAFE
        assert portfolio.engine in ("ic3-pl", "bmc", "kind")
