"""Unit tests for literal helpers."""

import pytest

from repro.logic import lit_var, lit_neg, lit_sign, lit_from_var, is_valid_lit


class TestLitVar:
    def test_positive_literal(self):
        assert lit_var(5) == 5

    def test_negative_literal(self):
        assert lit_var(-5) == 5

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            lit_var(0)


class TestLitNeg:
    def test_negation_of_positive(self):
        assert lit_neg(3) == -3

    def test_negation_of_negative(self):
        assert lit_neg(-3) == 3

    def test_double_negation_is_identity(self):
        for lit in (1, -1, 7, -42):
            assert lit_neg(lit_neg(lit)) == lit

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            lit_neg(0)


class TestLitSign:
    def test_positive(self):
        assert lit_sign(9) is True

    def test_negative(self):
        assert lit_sign(-9) is False

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            lit_sign(0)


class TestLitFromVar:
    def test_positive_polarity(self):
        assert lit_from_var(4) == 4
        assert lit_from_var(4, positive=True) == 4

    def test_negative_polarity(self):
        assert lit_from_var(4, positive=False) == -4

    def test_invalid_variable(self):
        with pytest.raises(ValueError):
            lit_from_var(0)
        with pytest.raises(ValueError):
            lit_from_var(-2)

    def test_roundtrip_with_var_and_sign(self):
        for var in (1, 2, 17):
            for positive in (True, False):
                lit = lit_from_var(var, positive)
                assert lit_var(lit) == var
                assert lit_sign(lit) == positive


class TestIsValidLit:
    def test_valid(self):
        assert is_valid_lit(1)
        assert is_valid_lit(-100)

    def test_invalid(self):
        assert not is_valid_lit(0)
        assert not is_valid_lit("3")
        assert not is_valid_lit(None)
