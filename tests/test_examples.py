"""Smoke tests: every script in examples/ must run against the current API.

The examples are documentation that executes; none of them were exercised
by CI before, so interface changes (like the engine refactor of PR 1 or
the reduction subsystem) could silently break them.  Each test runs one
script in a subprocess with arguments chosen to finish quickly and only
asserts a clean exit — the scripts contain their own assertions.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

# Script name -> fast smoke-test arguments.
EXAMPLE_ARGS = {
    "quickstart.py": [],
    "verify_aiger_file.py": [],
    "counterexample_trace.py": [],
    "compare_generalization.py": ["3", "4"],
    "reproduce_paper.py": ["--quick", "--timeout", "2", "--jobs", "0"],
}


def _run_example(name, args):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        cwd=str(REPO_ROOT),
    )


def test_every_example_is_covered():
    """A new example script must be added to EXAMPLE_ARGS."""
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLE_ARGS)


@pytest.mark.parametrize("name", sorted(EXAMPLE_ARGS))
def test_example_runs_clean(name):
    completed = _run_example(name, EXAMPLE_ARGS[name])
    assert completed.returncode == 0, (
        f"{name} exited with {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout[-2000:]}\n"
        f"--- stderr ---\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{name} produced no output"
