"""Failure-path and live-progress tests of the serve telemetry layer.

Covers the heartbeat stall watchdog (a SIGSTOPped worker is detected and
replaced long before its hard deadline), crash accounting for SIGKILLed
workers, and the ``job_progress`` introspection fed by worker heartbeats.
Like :mod:`tests.test_serve_workers`, the hang scenarios monkeypatch
``workers._execute_job`` before the pool forks so a marker value in the
job options makes a worker sleep on demand.
"""

import multiprocessing
import os
import shutil
import signal
import tempfile
import threading
import time

import pytest

from repro.aiger.parser import parse_aiger
from repro.aiger.writer import to_aag_string
from repro.benchgen import johnson_counter, token_ring
from repro.serve import workers
from repro.serve.jobqueue import JobQueue
from repro.serve.metrics import Metrics
from repro.serve.protocol import JobOptions, text_sha
from repro.serve.service import VerificationService
from repro.serve.workers import WarmWorkerPool

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="marker-based worker fault injection needs the fork start method",
)

MODEL_TEXT = to_aag_string(token_ring(2, safe=True).aig)
# Wide Johnson counter: several seconds of IC3 with a frame count that
# advances every few tens of milliseconds — ideal for progress polling.
SLOW_TEXT = to_aag_string(johnson_counter(48, safe=True).aig)

HANG_MARKER = 424242


def make_payload(job_id: str, *, timeout: float = 20.0, max_k: int = 20):
    options = JobOptions(engine="ic3-pl", timeout=timeout, max_k=max_k)
    return (
        job_id,
        {
            "job_id": job_id,
            "aig": parse_aiger(MODEL_TEXT),
            "digest": "d" * 64,
            "text_sha": text_sha(MODEL_TEXT),
            "options": options,
        },
    )


class Collector:
    def __init__(self):
        self.results = {}
        self.kinds = {}
        self.cond = threading.Condition()

    def __call__(self, job_id, record, kind):
        with self.cond:
            self.results[job_id] = record
            self.kinds[job_id] = kind
            self.cond.notify_all()

    def wait(self, count, timeout=60.0):
        with self.cond:
            ok = self.cond.wait_for(lambda: len(self.results) >= count, timeout)
        assert ok, f"only {sorted(self.results)} finished"


@pytest.fixture
def fault_injection(monkeypatch):
    original = workers._execute_job

    def patched(payload, warm):
        if payload["options"].max_k == HANG_MARKER:
            time.sleep(120)
        return original(payload, warm)

    monkeypatch.setattr(workers, "_execute_job", patched)


@pytest.fixture
def heartbeat_dir():
    path = tempfile.mkdtemp(prefix="repro-hb-test-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def _wait_for(predicate, timeout=15.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


class TestStallWatchdog:
    def test_sigstop_trips_watchdog_before_hard_deadline(
        self, fault_injection, heartbeat_dir
    ):
        queue = JobQueue(maxsize=4)
        collector = Collector()
        metrics = Metrics()
        # No trace_dir: the worker never installs a tracer, yet the
        # heartbeat channel must work on its own.
        pool = WarmWorkerPool(
            queue,
            collector,
            size=1,
            metrics=metrics,
            heartbeat_dir=heartbeat_dir,
            heartbeat_interval=0.05,
            stall_timeout=1.0,
        )
        pool.start()
        try:
            queue.put(make_payload("frozen", timeout=60.0, max_k=HANG_MARKER))
            worker = _wait_for(
                lambda: pool.worker_for_job("frozen"), message="job to start"
            )
            record = _wait_for(
                lambda: pool.worker_heartbeat(worker["pid"]),
                message="first heartbeat",
            )
            assert record["role"] == "serve"
            assert record["progress"]["job"] == "frozen"

            # A *sleeping* worker is not a stall: its publisher thread
            # keeps the heartbeat fresh, so waiting well past the stall
            # budget must not trip the watchdog.
            time.sleep(2.0)
            assert metrics.get("worker_stalls") == 0

            # Freeze the whole process (publisher thread included); the
            # record ages out and the watchdog replaces the worker far
            # before the 60 s hard deadline.
            started = time.monotonic()
            os.kill(worker["pid"], signal.SIGSTOP)
            collector.wait(1, timeout=20.0)
            assert time.monotonic() - started < 20.0
            assert metrics.get("worker_stalls") == 1
            assert collector.kinds["frozen"] == "stall"
            assert "stalled" in collector.results["frozen"]["error"]
        finally:
            pool.stop()

    def test_sigkill_counts_as_crash_before_deadline(
        self, fault_injection, heartbeat_dir
    ):
        queue = JobQueue(maxsize=4)
        collector = Collector()
        metrics = Metrics()
        pool = WarmWorkerPool(
            queue,
            collector,
            size=1,
            metrics=metrics,
            heartbeat_dir=heartbeat_dir,
            heartbeat_interval=0.05,
            stall_timeout=5.0,
        )
        pool.start()
        try:
            queue.put(make_payload("killed", timeout=60.0, max_k=HANG_MARKER))
            worker = _wait_for(
                lambda: pool.worker_for_job("killed"), message="job to start"
            )
            started = time.monotonic()
            os.kill(worker["pid"], signal.SIGKILL)
            collector.wait(1, timeout=20.0)
            # The pipe EOF reports the death within seconds — the crash
            # path wins the race against both the watchdog and the
            # 60 s hard deadline.
            assert time.monotonic() - started < 10.0
            assert collector.kinds["killed"] == "crash"
            assert metrics.get("worker_crashes") == 1
            assert metrics.get("worker_stalls") == 0
        finally:
            pool.stop()


class TestJobProgress:
    def test_unknown_job_has_no_progress(self):
        service = VerificationService(workers=1)
        try:
            assert service.job_progress("job-unknown") is None
        finally:
            service.stop()

    def test_queued_job_reports_status_without_worker(self):
        service = VerificationService(workers=1, default_timeout=20.0)
        service.start()
        try:
            service.pool.pause()
            status, payload = service.submit(
                MODEL_TEXT, options=JobOptions(engine="ic3-pl", timeout=20.0)
            )
            assert status == 202
            progress = service.job_progress(payload["id"])
            assert progress["status"] == "queued"
            assert "worker" not in progress
            service.pool.resume()
            service.wait(payload["id"], timeout=60.0)
        finally:
            service.stop()

    def test_running_job_reports_advancing_frames(self):
        service = VerificationService(
            workers=1, default_timeout=60.0, heartbeat_interval=0.05
        )
        service.start()
        try:
            status, payload = service.submit(
                SLOW_TEXT, options=JobOptions(engine="ic3-pl", timeout=60.0)
            )
            assert status == 202
            job_id = payload["id"]

            def _frame_progress():
                progress = service.job_progress(job_id)
                heartbeat = (progress or {}).get("heartbeat") or {}
                if "frame" in heartbeat:
                    return progress
                return None

            first = _wait_for(_frame_progress, timeout=30.0, message="first frame")
            second = _wait_for(
                lambda: (
                    lambda p: p
                    if p is not None
                    and p["heartbeat"]["frame"] > first["heartbeat"]["frame"]
                    else None
                )(_frame_progress()),
                timeout=30.0,
                message="frame advance",
            )
            assert second["heartbeat"]["frame"] > first["heartbeat"]["frame"]
            assert second["heartbeat"]["seq"] > first["heartbeat"]["seq"]
            assert second["heartbeat"]["engine"] == "ic3-pl"
            assert second["worker"]["pid"] > 0
            done = service.wait(job_id, timeout=120.0)
            assert done["result"]["result"] == "safe"
        finally:
            service.stop()
