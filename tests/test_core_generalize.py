"""Tests for the inductive-generalization (MIC) strategies."""


from repro.benchgen import token_ring, modular_counter, round_robin_arbiter
from repro.core.frames import FrameManager
from repro.core.generalize import (
    BasicGeneralizer,
    CtgGeneralizer,
    ParentOrderedGeneralizer,
    make_generalizer,
)
from repro.core.options import GeneralizationStrategy, IC3Options, LiteralOrdering
from repro.core.stats import IC3Stats
from repro.logic import Cube
from repro.ts import TransitionSystem


def _setup(case=None, **option_kwargs):
    case = case if case is not None else token_ring(4)
    ts = TransitionSystem(case.aig)
    options = IC3Options(**option_kwargs)
    stats = IC3Stats()
    frames = FrameManager(ts, options, stats)
    frames.add_frame()
    generalizer = make_generalizer(frames, ts, options, stats, {})
    return generalizer, frames, ts, stats


class TestFactory:
    def test_basic(self):
        generalizer, _, _, _ = _setup(generalization=GeneralizationStrategy.BASIC)
        assert isinstance(generalizer, BasicGeneralizer)

    def test_ctg(self):
        generalizer, _, _, _ = _setup(generalization=GeneralizationStrategy.CTG)
        assert isinstance(generalizer, CtgGeneralizer)

    def test_parent_ordered(self):
        generalizer, _, _, _ = _setup(
            generalization=GeneralizationStrategy.PARENT_ORDERED
        )
        assert isinstance(generalizer, ParentOrderedGeneralizer)


class TestLiteralOrdering:
    def test_index_order(self):
        generalizer, _, ts, _ = _setup(literal_ordering=LiteralOrdering.INDEX)
        cube = Cube([ts.latch_vars[2], ts.latch_vars[0]])
        assert generalizer.order_literals(cube, 1) == sorted(cube, key=abs)

    def test_reverse_order(self):
        generalizer, _, ts, _ = _setup(literal_ordering=LiteralOrdering.REVERSE_INDEX)
        cube = Cube([ts.latch_vars[2], ts.latch_vars[0]])
        assert generalizer.order_literals(cube, 1) == sorted(cube, key=abs, reverse=True)

    def test_activity_order_drops_least_active_first(self):
        generalizer, frames, ts, stats = _setup(
            literal_ordering=LiteralOrdering.ACTIVITY
        )
        activity = generalizer.literal_activity
        activity[abs(ts.latch_vars[0])] = 10.0
        activity[abs(ts.latch_vars[1])] = 1.0
        cube = Cube([ts.latch_vars[0], ts.latch_vars[1]])
        ordered = generalizer.order_literals(cube, 1)
        assert abs(ordered[0]) == abs(ts.latch_vars[1])

    def test_parent_ordered_keeps_parent_literals_last(self):
        generalizer, frames, ts, _ = _setup(
            generalization=GeneralizationStrategy.PARENT_ORDERED
        )
        frames.add_frame()
        parent = Cube([ts.latch_vars[1]])
        frames.add_blocked_cube(parent, 1)
        cube = Cube([ts.latch_vars[0], ts.latch_vars[1], ts.latch_vars[2]])
        ordered = generalizer.order_literals(cube, 2)
        assert ordered[-1] == ts.latch_vars[1]


class TestGeneralizationCorrectness:
    def _assert_valid_generalization(self, frames, ts, original, generalized, level):
        # The generalized cube is a sub-cube ...
        assert generalized.literal_set <= original.literal_set
        assert len(generalized) >= 1
        # ... that still excludes the initial states ...
        assert not ts.cube_intersects_init(generalized)
        # ... and is still relatively inductive at the same level.
        assert frames.consecution(level - 1, generalized).holds

    def test_two_token_cube_shrinks(self):
        generalizer, frames, ts, stats = _setup(token_ring(5))
        # Full state with two tokens: unreachable, blockable at level 1.
        original = Cube(
            [ts.latch_vars[0], ts.latch_vars[1]]
            + [-v for v in ts.latch_vars[2:]]
        )
        assert frames.consecution(0, original).holds
        generalized = generalizer.generalize(original, 1)
        self._assert_valid_generalization(frames, ts, original, generalized, 1)
        assert len(generalized) < len(original)
        assert stats.mic_drop_attempts > 0

    def test_counter_range_cube_shrinks(self):
        case = modular_counter(4, modulus=14, bad_value=15)
        generalizer, frames, ts, stats = _setup(case)
        # State 15 (all ones) is unreachable; its cube should generalize.
        original = Cube(list(ts.latch_vars))
        assert frames.consecution(0, original).holds
        generalized = generalizer.generalize(original, 1)
        self._assert_valid_generalization(frames, ts, original, generalized, 1)

    def test_generalization_never_intersects_init(self):
        for strategy in GeneralizationStrategy:
            generalizer, frames, ts, _ = _setup(
                token_ring(4), generalization=strategy
            )
            original = Cube(
                [ts.latch_vars[1], ts.latch_vars[2]]
                + [-ts.latch_vars[0], -ts.latch_vars[3]]
            )
            assert frames.consecution(0, original).holds
            generalized = generalizer.generalize(original, 1)
            self._assert_valid_generalization(frames, ts, original, generalized, 1)

    def test_single_literal_cube_kept(self):
        case = modular_counter(3, modulus=4, bad_value=7)
        generalizer, frames, ts, _ = _setup(case)
        # Counter bit 2 can never be 1 (modulus 4).
        original = Cube([ts.latch_vars[2]])
        assert frames.consecution(0, original).holds
        generalized = generalizer.generalize(original, 1)
        assert generalized == original

    def test_ctg_generalizer_blocks_ctgs(self):
        case = round_robin_arbiter(3, safe=True)
        options_kwargs = dict(generalization=GeneralizationStrategy.CTG, ctg_depth=1, max_ctgs=3)
        generalizer, frames, ts, stats = _setup(case, **options_kwargs)
        # Two grants at once is unreachable but needs the token invariant;
        # generalizing it gives the CTG machinery something to do.
        grant_vars = ts.latch_vars[3:]
        original = Cube(
            [grant_vars[0], grant_vars[1]]
            + [-v for v in ts.latch_vars if v not in (grant_vars[0], grant_vars[1])]
        )
        if frames.consecution(0, original).holds:
            generalized = generalizer.generalize(original, 1)
            self._assert_valid_generalization(frames, ts, original, generalized, 1)

    def test_mic_multiple_rounds_no_worse(self):
        generalizer_one, frames_one, ts_one, _ = _setup(token_ring(5), mic_max_rounds=1)
        generalizer_two, frames_two, ts_two, _ = _setup(token_ring(5), mic_max_rounds=3)
        original_one = Cube(
            [ts_one.latch_vars[0], ts_one.latch_vars[1]]
            + [-v for v in ts_one.latch_vars[2:]]
        )
        original_two = Cube(
            [ts_two.latch_vars[0], ts_two.latch_vars[1]]
            + [-v for v in ts_two.latch_vars[2:]]
        )
        result_one = generalizer_one.generalize(original_one, 1)
        result_two = generalizer_two.generalize(original_two, 1)
        assert len(result_two) <= len(result_one)

    def test_core_shrinking_disabled_still_correct(self):
        generalizer, frames, ts, _ = _setup(
            token_ring(4), use_unsat_core_shrinking=False
        )
        original = Cube(
            [ts.latch_vars[0], ts.latch_vars[1]] + [-v for v in ts.latch_vars[2:]]
        )
        generalized = generalizer.generalize(original, 1)
        self._assert_valid_generalization(frames, ts, original, generalized, 1)

    def test_drop_statistics_consistent(self):
        generalizer, frames, ts, stats = _setup(token_ring(4))
        original = Cube(
            [ts.latch_vars[0], ts.latch_vars[1]] + [-v for v in ts.latch_vars[2:]]
        )
        generalizer.generalize(original, 1)
        assert stats.mic_drop_successes <= stats.mic_drop_attempts
