"""Tests for benchmark suite assembly."""


from repro.benchgen import SuiteSpec, build_suite, default_suite, quick_suite
from repro.core import CheckResult


class TestDefaultSuite:
    def test_has_expected_scale(self):
        suite = default_suite()
        assert len(suite) >= 50

    def test_names_are_unique(self):
        suite = default_suite()
        assert len({case.name for case in suite}) == len(suite)

    def test_mixes_safe_and_unsafe(self):
        suite = default_suite()
        safe = sum(1 for c in suite if c.expected == CheckResult.SAFE)
        unsafe = sum(1 for c in suite if c.expected == CheckResult.UNSAFE)
        assert safe >= 25
        assert unsafe >= 10

    def test_every_case_has_ground_truth(self):
        assert all(case.expected is not None for case in default_suite())

    def test_covers_all_families(self):
        families = {case.family for case in default_suite()}
        assert {
            "counter",
            "ring",
            "johnson",
            "lfsr",
            "pipeline",
            "arbiter",
            "fifo",
            "lock",
            "traffic",
        } <= families

    def test_unsafe_cases_have_expected_depth(self):
        for case in default_suite():
            if case.expected == CheckResult.UNSAFE:
                assert case.expected_depth is not None and case.expected_depth >= 0

    def test_deterministic(self):
        names_a = [case.name for case in default_suite()]
        names_b = [case.name for case in default_suite()]
        assert names_a == names_b

    def test_all_circuits_wellformed(self):
        for case in default_suite():
            case.aig.validate()


class TestQuickSuite:
    def test_is_smaller_subset_of_families(self):
        quick = quick_suite()
        assert 10 <= len(quick) < len(default_suite())

    def test_quick_suite_is_fast_sized(self):
        assert all(case.aig.num_latches <= 12 for case in quick_suite())


class TestBuildSuite:
    def test_custom_spec(self):
        spec = SuiteSpec(
            counter_widths=(3,),
            modular_widths=(3,),
            ring_sizes=(3,),
            johnson_widths=(3,),
            lfsr_widths=(3,),
            pipeline_stages=(3,),
            arbiter_sizes=(2,),
            fifo_widths=(2,),
            lock_lengths=(2,),
            include_unsafe=False,
        )
        suite = build_suite(spec)
        assert all(case.expected == CheckResult.SAFE for case in suite)

    def test_include_unsafe_toggle(self):
        spec = SuiteSpec(include_unsafe=True)
        with_unsafe = build_suite(spec)
        without_unsafe = build_suite(
            SuiteSpec(include_unsafe=False)
        )
        assert len(with_unsafe) > len(without_unsafe)

    def test_default_spec_equals_default_suite(self):
        assert [c.name for c in build_suite()] == [c.name for c in default_suite()]
