"""Tests for the evaluation harness: configs, runner, tables, figures, report."""

import pytest

from repro.benchgen import modular_counter, token_ring, combination_lock
from repro.core import CheckResult, IC3Options
from repro.harness import (
    BenchmarkRunner,
    CaseResult,
    EngineConfig,
    cactus_data,
    paper_configurations,
    prediction_pairs,
    ratio_vs_sradv,
    run_paper_evaluation,
    scatter_data,
    success_rate_table,
    summary_table,
)
from repro.harness.configs import config_by_name
from repro.harness.report import build_report


SMALL_CASES = [
    token_ring(3),
    token_ring(3, safe=False),
    modular_counter(3, modulus=6, bad_value=7),
    combination_lock([1, 2]),
]

TWO_CONFIGS = [
    EngineConfig(name="IC3ref", options=IC3Options.profile_ic3_a()),
    EngineConfig(name="IC3ref-pl", options=IC3Options.profile_ic3_a().with_prediction()),
]


@pytest.fixture(scope="module")
def small_run():
    runner = BenchmarkRunner(SMALL_CASES, TWO_CONFIGS, timeout=20.0, validate=True)
    return runner.run()


class TestConfigurations:
    def test_paper_configurations_match_table1_rows(self):
        names = [config.name for config in paper_configurations()]
        assert names == [
            "RIC3",
            "RIC3-pl",
            "IC3ref",
            "IC3ref-pl",
            "IC3ref-CAV23",
            "ABC-PDR",
        ]

    def test_prediction_flags(self):
        for config in paper_configurations():
            assert config.uses_prediction == config.name.endswith("-pl")

    def test_prediction_pairs_reference_existing_configs(self):
        names = {config.name for config in paper_configurations()}
        for base, pl in prediction_pairs():
            assert base in names and pl in names

    def test_config_by_name(self):
        assert config_by_name("ABC-PDR").name == "ABC-PDR"
        with pytest.raises(KeyError):
            config_by_name("nonexistent")

    def test_all_options_valid(self):
        for config in paper_configurations():
            config.options.validate()


class TestRunner:
    def test_all_pairs_executed(self, small_run):
        assert len(small_run.results) == len(SMALL_CASES) * len(TWO_CONFIGS)
        assert small_run.configs() == ["IC3ref", "IC3ref-pl"]
        assert len(small_run.cases()) == len(SMALL_CASES)

    def test_results_are_correct_and_validated(self, small_run):
        assert small_run.incorrect_results() == []
        for result in small_run.results:
            assert result.solved
            assert result.validated is True

    def test_lookup_and_by_case(self, small_run):
        result = small_run.lookup("IC3ref", "ring_n3_safe")
        assert result is not None
        assert result.result == CheckResult.SAFE
        by_case = small_run.by_case("ring_n3_safe")
        assert set(by_case) == {"IC3ref", "IC3ref-pl"}
        assert small_run.lookup("IC3ref", "missing") is None

    def test_solved_count(self, small_run):
        assert small_run.solved_count("IC3ref") == len(SMALL_CASES)

    def test_penalized_runtime_for_timeouts(self):
        result = CaseResult(
            case_name="x",
            config_name="y",
            result=CheckResult.UNKNOWN,
            runtime=0.3,
            timeout=5.0,
        )
        assert result.timed_out
        assert result.penalized_runtime == 5.0
        assert result.correct  # unknown never counts as wrong

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkRunner(SMALL_CASES, TWO_CONFIGS, timeout=0)

    def test_timeout_produces_unknown(self):
        from repro.benchgen import parity_counter

        runner = BenchmarkRunner(
            [parity_counter(8)], TWO_CONFIGS[:1], timeout=0.2
        )
        result = runner.run().results[0]
        assert result.result == CheckResult.UNKNOWN
        assert result.timed_out


class TestTables:
    def test_table1_counts(self, small_run):
        table = summary_table(small_run)
        row = table.row_for("IC3ref-pl")
        assert row is not None
        config, solved, safe, unsafe, _, wrong = row
        assert solved == 4 and safe == 2 and unsafe == 2 and wrong == 0

    def test_table1_text_rendering(self, small_run):
        text = summary_table(small_run).to_text()
        assert "Table 1" in text
        assert "IC3ref-pl" in text
        assert "Solved" in text

    def test_table1_csv(self, small_run):
        csv = summary_table(small_run).to_csv()
        assert csv.splitlines()[0].startswith("Configuration,Solved")
        assert len(csv.splitlines()) == 3

    def test_table2_only_prediction_configs(self, small_run):
        table = success_rate_table(small_run)
        assert [row[0] for row in table.rows] == ["IC3ref-pl"]
        assert table.row_for("IC3ref-pl")[1] is not None  # SR_lp defined

    def test_table2_rates_in_percent_range(self, small_run):
        table = success_rate_table(small_run)
        for row in table.rows:
            for cell in row[1:4]:
                if cell is None:
                    continue
                value = float(cell.rstrip("%"))
                assert 0.0 <= value <= 100.0

    def test_table_row_mismatch_rejected(self):
        from repro.harness.tables import Table

        table = Table(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_table_column_accessor(self, small_run):
        table = summary_table(small_run)
        assert table.column("Configuration") == ["IC3ref", "IC3ref-pl"]


class TestFigures:
    def test_cactus_monotone(self, small_run):
        series = cactus_data(small_run)["IC3ref"]
        points = series.points()
        counts = [count for _, count in points]
        assert counts == sorted(counts)
        assert series.solved_within(1e9) == 4
        assert series.solved_within(0.0) == 0

    def test_scatter_points_cover_all_cases(self, small_run):
        scatter = scatter_data(small_run, "IC3ref", "IC3ref-pl")
        assert len(scatter.points) == len(SMALL_CASES)
        assert scatter.below_diagonal_count + scatter.above_diagonal_count <= len(
            scatter.points
        )
        assert scatter.only_pl_solved() == []
        assert scatter.only_base_solved() == []

    def test_ratio_data_excludes_fast_cases(self, small_run):
        data = ratio_vs_sradv(small_run, "IC3ref", "IC3ref-pl", min_runtime=1e9)
        assert data.points == []
        assert len(data.excluded_cases) == len(SMALL_CASES)

    def test_ratio_data_includes_slow_cases(self, small_run):
        data = ratio_vs_sradv(small_run, "IC3ref", "IC3ref-pl", min_runtime=0.0)
        assert len(data.points) + len(data.excluded_cases) == len(SMALL_CASES)
        for point in data.points:
            assert point.ratio > 0
            assert 0.0 <= point.sr_adv <= 1.0
        cumulative = data.cumulative_improved()
        if cumulative:
            counts = [c for _, c in cumulative]
            assert counts == sorted(counts)

    def test_ratio_buckets(self, small_run):
        data = ratio_vs_sradv(small_run, "IC3ref", "IC3ref-pl", min_runtime=0.0)
        buckets = data.improvement_rate_by_bucket(buckets=2)
        for _, rate in buckets:
            assert 0.0 <= rate <= 1.0


class TestReport:
    def test_run_paper_evaluation_small(self):
        report = run_paper_evaluation(
            cases=SMALL_CASES, configs=TWO_CONFIGS, timeout=20.0
        )
        text = report.to_text()
        assert "Table 1" in text
        assert "Table 2" in text
        assert "Figure 2" in text
        assert "Figure 3" in text
        assert report.num_cases == len(SMALL_CASES)

    def test_build_report_uses_prediction_pairs_present(self, small_run):
        report = build_report(small_run, timeout=20.0)
        assert len(report.scatters) == 1  # only the IC3ref pair is present
        assert report.scatters[0].pl_config == "IC3ref-pl"
