"""Zero verdict drift between the two frame-management substrates.

The monolithic and per-frame backends must return identical SAFE/UNSAFE
verdicts, and the witnesses of both must pass the independent validators
(``check_certificate`` / ``check_counterexample``) unchanged.  This is
the fast in-tree version of the acceptance check that
``benchmarks/substrate_compare.py`` runs over the full suites.
"""

import pytest

from repro.benchgen import modular_counter, token_ring
from repro.benchgen.suite import quick_suite
from repro.core import IC3, IC3Options, CheckResult
from repro.core.invariant import check_certificate, check_counterexample

BACKENDS = ("monolithic", "per-frame")


def _check(case, backend, prediction=False):
    options = IC3Options(frame_backend=backend)
    if prediction:
        options = options.with_prediction()
    return IC3(case.aig, options).check(time_limit=30)


class TestVerdictParity:
    @pytest.mark.parametrize("case", quick_suite(), ids=lambda c: c.name)
    def test_quick_suite_verdicts_agree_and_validate(self, case):
        outcomes = {b: _check(case, b) for b in BACKENDS}
        assert (
            outcomes["monolithic"].result == outcomes["per-frame"].result
        ), f"verdict drift on {case.name}"
        if case.expected is not None:
            assert outcomes["monolithic"].result == case.expected
        for outcome in outcomes.values():
            if outcome.result == CheckResult.SAFE:
                assert check_certificate(case.aig, outcome.certificate)
            elif outcome.result == CheckResult.UNSAFE:
                assert check_counterexample(case.aig, outcome.trace)

    @pytest.mark.parametrize(
        "case",
        [token_ring(5), modular_counter(4, modulus=16, bad_value=11)],
        ids=lambda c: c.name,
    )
    def test_parity_with_lemma_prediction(self, case):
        results = {b: _check(case, b, prediction=True).result for b in BACKENDS}
        assert results["monolithic"] == results["per-frame"]
