"""Determinism regression: ``evaluate`` manifests for jobs=1 vs jobs=4.

The harness promises byte-identical results regardless of worker-pool
parallelism.  With manifest schema v3 the per-result ``stats`` block also
carries the solving-substrate counters (activation variables, shared vs
duplicated clauses, trail reuse), all of which must be deterministic —
only wall-clock fields may differ between runs.
"""

import json

from repro.benchgen import modular_counter, token_ring
from repro.core.options import IC3Options
from repro.harness.configs import EngineConfig
from repro.harness.manifest import MANIFEST_SCHEMA, build_manifest
from repro.harness.runner import BenchmarkRunner

CASES = [
    token_ring(3),
    token_ring(4),
    modular_counter(3, modulus=8, bad_value=7),
    modular_counter(3, modulus=6, bad_value=2),
]

CONFIGS = [
    EngineConfig(name="ic3-base", options=IC3Options()),
    EngineConfig(name="ic3-pl", options=IC3Options().with_prediction()),
]

TIMING_FIELDS = {
    "runtime",
    "penalized_runtime",
    "sat_time",
    "time_total",
    "time_generalization",
    "time_prediction",
    "time_propagation",
    "time_import_validation",
    "par1_time",
    "phase_times",
    "wall_clock",
    "created_at",
}


def _normalize(node):
    """Replace every timing field with a constant, recursively."""
    if isinstance(node, dict):
        return {
            key: (0 if key in TIMING_FIELDS else _normalize(value))
            for key, value in node.items()
        }
    if isinstance(node, list):
        return [_normalize(item) for item in node]
    return node


def _manifest(jobs: int) -> dict:
    suite_result = BenchmarkRunner(
        CASES, CONFIGS, timeout=60.0, jobs=jobs, validate=True
    ).run()
    return build_manifest(
        suite_result, suite="determinism", jobs=jobs, validate=True,
        configs=CONFIGS,
    )


class TestManifestDeterminism:
    def test_jobs_1_and_4_byte_identical_modulo_timing(self):
        one = _manifest(jobs=1)
        four = _manifest(jobs=4)
        one["jobs"] = four["jobs"] = 0
        text_one = json.dumps(_normalize(one), indent=2, sort_keys=True)
        text_four = json.dumps(_normalize(four), indent=2, sort_keys=True)
        assert text_one == text_four

    def test_substrate_stats_present_and_deterministic(self):
        manifest = _manifest(jobs=4)
        assert manifest["schema"] == MANIFEST_SCHEMA == "repro-check/manifest/v9"
        # v9: the telemetry block defaults to None so identical runs keep
        # producing byte-identical manifests.
        assert manifest["telemetry"] is None
        for result in manifest["results"]:
            stats = result["stats"]
            for field in (
                "lemma_clauses_added",
                "lemma_clauses_removed",
                "solver_clauses_shared",
                "solver_clauses_duplicated",
                "activation_vars_allocated",
                "activation_vars_recycled",
                "activation_vars_retired",
                "assumption_levels_reused",
                "consecution_fallbacks",
                "watch_traversals",
                "blocker_hits",
                "literal_pool_bytes",
                "arena_compactions",
                "solver_removed_clauses",
                # v8: kernel search totals + lemma-sharing counters.
                "solver_conflicts",
                "solver_decisions",
                "solver_propagations",
                "lemmas_published",
                "lemmas_received",
                "lemmas_validated",
                "lemmas_rejected",
                "lemmas_imported",
                "bus_overflows",
            ):
                assert field in stats
                assert isinstance(stats[field], int)
            assert "time_import_validation" in stats
            # No bus in these runs: exchange counters must stay zero.
            assert stats["lemmas_imported"] == 0
            assert result["sharing"] is None
            assert result["validated"] is True
        # Every configuration records its solving substrate and seed.
        for meta in manifest["configs"].values():
            assert meta["frame_backend"] == "monolithic"
            assert meta["sat_backend"] == "default"
            assert meta["seed"] == 0
        # v7: every configuration total carries the phase-time breakdown.
        for totals in manifest["totals"].values():
            phase_times = totals["phase_times"]
            assert set(phase_times) == {
                "sat",
                "generalization",
                "prediction",
                "propagation",
                "reduction",
                "other",
            }
            for value in phase_times.values():
                assert isinstance(value, float) and value >= 0.0
