"""Tests for the Luby restart sequence."""

import pytest
from hypothesis import given, strategies as st

from repro.sat import luby


class TestLuby:
    def test_known_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1]
        assert [luby(i) for i in range(len(expected))] == expected

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            luby(-1)

    def test_values_are_powers_of_two(self):
        for i in range(200):
            value = luby(i)
            assert value & (value - 1) == 0

    @given(st.integers(min_value=0, max_value=2000))
    def test_self_similarity(self, i):
        """The sequence ends each block of length 2^k - 1 with 2^(k-1)."""
        value = luby(i)
        assert value >= 1

    def test_block_structure(self):
        # Element at index 2^k - 2 equals 2^(k-1) (end of each complete block).
        for k in range(1, 10):
            assert luby((1 << k) - 2) == 1 << (k - 1)
