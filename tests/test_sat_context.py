"""Tests for the pluggable SAT-context layer and the incremental solver.

Covers the backend registry, activation-literal scopes (removable
clauses, recycling and retirement), physical clause removal, the
assumption-trail reuse machinery, and a randomized differential check of
the whole incremental protocol against fresh from-scratch solvers.
"""

import random

import pytest

from repro.sat import (
    ContextStats,
    SatContext,
    Solver,
    SolverError,
    available_sat_backends,
    register_sat_backend,
    sat_backend,
    unregister_sat_backend,
)


class TestBackendRegistry:
    def test_default_backend_is_registered(self):
        assert "default" in available_sat_backends()
        assert sat_backend("default") is Solver

    def test_unknown_backend_raises(self):
        with pytest.raises(SolverError, match="unknown SAT backend"):
            sat_backend("no-such-backend")

    def test_custom_backend_plugs_in(self):
        created = []

        class CountingSolver(Solver):
            def __init__(self):
                super().__init__()
                created.append(self)

        register_sat_backend("counting-test", CountingSolver)
        try:
            ctx = SatContext(backend="counting-test")
            assert isinstance(ctx.solver, CountingSolver)
            assert created == [ctx.solver]
        finally:
            unregister_sat_backend("counting-test")
        assert "counting-test" not in available_sat_backends()

    def test_duplicate_registration_rejected(self):
        register_sat_backend("dup-test", Solver)
        try:
            with pytest.raises(SolverError, match="already registered"):
                register_sat_backend("dup-test", Solver)
        finally:
            unregister_sat_backend("dup-test")

    def test_decorator_form(self):
        @register_sat_backend("decorated-test")
        def _factory():
            return Solver()

        try:
            assert sat_backend("decorated-test") is _factory
        finally:
            unregister_sat_backend("decorated-test")


class TestActivationScopes:
    def test_guarded_clause_only_active_under_assumption(self):
        solver = Solver()
        solver.ensure_var(2)
        act = solver.new_activation()
        solver.add_guarded(act, [1])
        solver.add_guarded(act, [2])
        # Without the assumption the clauses do not constrain anything.
        assert solver.solve([-1])
        # Under the assumption they do.
        assert solver.solve([act]) and solver.model_value(1) is True
        assert not solver.solve([act, -1])

    def test_release_removes_the_group(self):
        solver = Solver()
        solver.ensure_var(1)
        act = solver.new_activation()
        solver.add_guarded(act, [1])
        assert not solver.solve([act, -1])
        solver.release(act)
        with pytest.raises(SolverError, match="not an active activation"):
            solver.add_guarded(act, [1])
        assert solver.solve([-1])  # the clause is physically gone

    def test_activation_vars_are_recycled(self):
        solver = Solver()
        solver.ensure_var(4)
        first = solver.new_activation()
        solver.add_guarded(first, [1, 2])
        solver.solve([first, -1])
        solver.release(first)
        second = solver.new_activation()
        assert second == first  # recycled, no new variable
        assert solver.stats.activation_vars_recycled == 1
        # The recycled guard starts clean.
        solver.add_guarded(second, [3])
        assert solver.solve([second, -1, -2])
        assert not solver.solve([second, -3])

    def test_activation_var_retired_when_fixed_at_level_zero(self):
        solver = Solver()
        solver.ensure_var(1)
        solver.add_clause([1])
        act = solver.new_activation()
        # (-act | -1) with 1 fixed true at level 0 simplifies to unit -act.
        solver.add_guarded(act, [-1])
        solver.release(act)
        assert solver.stats.activation_vars_retired == 1
        replacement = solver.new_activation()
        assert replacement != act

    def test_release_purges_dependent_learnts(self):
        # Build a scope whose clauses force a conflict under assumptions,
        # so the solver learns clauses mentioning the activation literal;
        # after release + recycling, the new group must not be affected.
        solver = Solver()
        solver.ensure_var(6)
        solver.add_clause([1, 2])
        solver.add_clause([-2, 3])
        act = solver.new_activation()
        solver.add_guarded(act, [-3, 4])
        solver.add_guarded(act, [-3, -4])
        assert not solver.solve([act, -1])
        solver.release(act)
        act2 = solver.new_activation()
        assert act2 == act
        solver.add_guarded(act2, [5])
        assert solver.solve([act2, -1])  # no stale learnt blocks this
        assert solver.model_value(5) is True

    def test_remove_guarded_single_clause(self):
        solver = Solver()
        solver.ensure_var(3)
        act = solver.new_activation()
        _, strong = solver.add_guarded(act, [1])
        _, weak = solver.add_guarded(act, [1, 2])
        # The weak clause is implied by the strong one: removable.
        solver.remove_guarded(act, weak)
        assert not solver.solve([act, -1])
        assert solver.stats.guarded_clauses_freed == 1
        # Removing an already-deleted clause is an idempotent no-op.
        solver.remove_guarded(act, weak)
        assert solver.stats.guarded_clauses_freed == 1
        foreign = Solver()
        _, other = foreign._add_clause_internal([2, 3])
        assert other is not None
        with pytest.raises(SolverError, match="does not belong"):
            solver.remove_guarded(act, other)

    def test_remove_guarded_deferred_while_trail_live(self):
        solver = Solver()
        solver.ensure_var(3)
        act = solver.new_activation()
        _, strong = solver.add_guarded(act, [1])
        _, weak = solver.add_guarded(act, [1, 2])
        assert solver.solve([act])  # leaves a reusable trail behind
        solver.remove_guarded(act, weak)  # deferred: trail is live
        assert not solver.solve([act, -1])  # still correct
        assert solver.solve([-1, -2])  # weak clause eventually detached


class TestTrailReuse:
    def test_reuse_counter_grows_with_shared_prefixes(self):
        solver = Solver()
        solver.ensure_var(6)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve([1, 4])
        assert solver.solve([1, 5])
        assert solver.solve([1, 6])
        assert solver.stats.assumption_levels_reused >= 2

    def test_answers_unchanged_across_reuse(self):
        solver = Solver()
        solver.ensure_var(4)
        solver.add_clause([-1, 2])
        solver.add_clause([-1, -3])
        assert solver.solve([1, 2])
        assert not solver.solve([1, 3])
        assert solver.solve([1, -3])
        with pytest.raises(SolverError):
            solver.unsat_core()  # last call was SAT
        assert not solver.solve([1, 3])
        core = solver.unsat_core()
        assert set(core) <= {1, 3} and core

    def test_clause_addition_flushes_reused_trail(self):
        solver = Solver()
        solver.ensure_var(3)
        assert solver.solve([1, 2])
        solver.add_clause([-1, -2])  # must invalidate the kept trail
        assert not solver.solve([1, 2])
        assert solver.solve([1, -2])


class TestSatContext:
    def test_context_counts_solves_and_clauses(self):
        ctx = SatContext()
        assert isinstance(ctx.stats, ContextStats)
        ctx.load([[1, 2], [-1, 2]])
        assert ctx.stats.clauses_loaded == 2
        assert ctx.solve([])
        assert not ctx.solve([-2])
        assert ctx.stats.solve_calls == 2
        assert ctx.stats.sat_answers == 1
        assert ctx.stats.unsat_answers == 1
        assert ctx.stats.solve_time >= 0.0

    def test_scope_round_trip(self):
        ctx = SatContext()
        ctx.solver.ensure_var(2)
        scope = ctx.new_scope()
        handle = ctx.add_to_scope(scope, [1, 2])
        assert handle is not None
        assert not ctx.solve([scope, -1, -2])
        ctx.release_scope(scope)
        assert ctx.solve([-1, -2])

    def test_stats_as_dict_round_trips(self):
        ctx = SatContext()
        ctx.load([[1]])
        ctx.solve([])
        data = ctx.stats.as_dict()
        assert data["clauses_loaded"] == 1
        assert data["solve_calls"] == 1


class TestDifferentialSoundness:
    """The incremental protocol must agree with fresh from-scratch solves."""

    @staticmethod
    def _fresh_answer(clauses, assumptions):
        solver = Solver()
        solver.ensure_var(12)
        for clause in clauses:
            solver.add_clause(clause)
        return solver.solve(assumptions)

    def test_randomized_incremental_vs_fresh(self):
        rng = random.Random(20240707)
        num_vars = 10
        incremental = Solver()
        incremental.ensure_var(num_vars)
        permanent = []
        scopes = {}  # act -> list of clauses

        for step in range(400):
            action = rng.random()
            if action < 0.25:
                clause = [
                    rng.choice([1, -1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(1, 3))
                ]
                permanent.append(clause)
                incremental.add_clause(clause)
            elif action < 0.45:
                act = incremental.new_activation()
                scopes[act] = []
                for _ in range(rng.randint(1, 3)):
                    clause = [
                        rng.choice([1, -1]) * rng.randint(1, num_vars)
                        for _ in range(rng.randint(1, 3))
                    ]
                    scopes[act].append(clause)
                    incremental.add_guarded(act, clause)
            elif action < 0.6 and scopes:
                act = rng.choice(sorted(scopes))
                del scopes[act]
                incremental.release(act)
            else:
                assumed_acts = [
                    act for act in sorted(scopes) if rng.random() < 0.5
                ]
                literal_assumptions = sorted(
                    {
                        rng.choice([1, -1]) * rng.randint(1, num_vars)
                        for _ in range(rng.randint(0, 3))
                    },
                    key=abs,
                )
                # Skip contradictory assumption sets (x and -x).
                if any(-lit in literal_assumptions for lit in literal_assumptions):
                    continue
                live = list(permanent)
                for act in assumed_acts:
                    live.extend(scopes[act])
                expected = self._fresh_answer(live, literal_assumptions)
                got = incremental.solve(assumed_acts + literal_assumptions)
                assert got == expected, f"divergence at step {step}"
                if got:
                    model = incremental.get_model()
                    for clause in live:
                        assert any(
                            model.get(abs(lit), lit < 0) == (lit > 0)
                            for lit in clause
                        ), f"model violates clause {clause} at step {step}"
