"""Tests for the command-line interface."""

import pytest

from repro.aiger import write_aag
from repro.benchgen import modular_counter, token_ring
from repro.cli import build_parser, main


@pytest.fixture()
def safe_model(tmp_path):
    path = tmp_path / "safe.aag"
    write_aag(token_ring(3).aig, path)
    return str(path)


@pytest.fixture()
def unsafe_model(tmp_path):
    path = tmp_path / "unsafe.aag"
    write_aag(modular_counter(3, modulus=8, bad_value=2).aig, path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_check_defaults(self):
        args = build_parser().parse_args(["check", "model.aag"])
        assert args.engine == "ic3-pl"
        assert args.timeout is None

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.timeout == 5.0
        assert not args.quick


class TestCheckCommand:
    def test_safe_model_exit_code(self, safe_model, capsys):
        assert main(["check", safe_model]) == 0
        assert "safe" in capsys.readouterr().out

    def test_unsafe_model_exit_code(self, unsafe_model, capsys):
        assert main(["check", unsafe_model]) == 1
        assert "unsafe" in capsys.readouterr().out

    def test_plain_ic3_engine(self, safe_model):
        assert main(["check", safe_model, "--engine", "ic3"]) == 0

    def test_bmc_engine_on_unsafe(self, unsafe_model, capsys):
        assert main(["check", unsafe_model, "--engine", "bmc", "--max-depth", "5"]) == 1
        assert "bmc" in capsys.readouterr().out

    def test_bmc_engine_inconclusive_on_safe(self, safe_model):
        assert main(["check", safe_model, "--engine", "bmc", "--max-depth", "3"]) == 2

    def test_kinduction_engine(self, safe_model, capsys):
        assert main(["check", safe_model, "--engine", "kind"]) == 0
        assert "k-induction" in capsys.readouterr().out

    def test_kinduction_alias(self, safe_model):
        assert main(["check", safe_model, "--engine", "k-induction"]) == 0

    def test_kinduction_max_k_flag(self, safe_model):
        args = build_parser().parse_args(["check", safe_model, "--max-k", "5"])
        assert args.max_k == 5

    def test_portfolio_engine_on_unsafe(self, unsafe_model, capsys):
        assert main(["check", unsafe_model, "--engine", "portfolio"]) == 1
        out = capsys.readouterr().out
        assert "portfolio" in out
        assert "won by" in out

    def test_portfolio_engine_on_safe(self, safe_model, capsys):
        assert main(["check", safe_model, "--engine", "portfolio", "--jobs", "2"]) == 0
        assert "won by" in capsys.readouterr().out


class TestSuiteCommand:
    def test_suite_listing(self, capsys):
        assert main(["suite", "--list", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "cases" in output
        assert "ring" in output

    def test_suite_count_only(self, capsys):
        assert main(["suite", "--quick"]) == 0
        assert "cases" in capsys.readouterr().out


class TestEvaluateCommand:
    def test_quick_evaluation_smoke(self, capsys, monkeypatch):
        # Shrink the suite to keep the CLI test fast.
        from repro import cli
        from repro.benchgen import token_ring as ring

        monkeypatch.setattr(cli, "quick_suite", lambda: [ring(3), ring(3, safe=False)])
        exit_code = main(["evaluate", "--quick", "--timeout", "20"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 1" in output
        assert "RIC3-pl" in output

    def test_parallel_evaluation_with_manifest(self, capsys, monkeypatch, tmp_path):
        import json

        from repro import cli
        from repro.benchgen import token_ring as ring

        monkeypatch.setattr(cli, "quick_suite", lambda: [ring(3), ring(3, safe=False)])
        manifest_path = tmp_path / "run.json"
        exit_code = main(
            [
                "evaluate",
                "--quick",
                "--timeout",
                "20",
                "--jobs",
                "2",
                "--output",
                str(manifest_path),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Run manifest written" in output
        manifest = json.loads(manifest_path.read_text())
        assert manifest["jobs"] == 2
        assert manifest["suite"] == "quick"
        assert manifest["num_cases"] == 2
        assert {r["config"] for r in manifest["results"]} == {
            "RIC3", "RIC3-pl", "IC3ref", "IC3ref-pl", "IC3ref-CAV23", "ABC-PDR"
        }

    def test_evaluate_jobs_default(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.jobs == 1
        assert args.output is None
