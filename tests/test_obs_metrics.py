"""Unit tests of the metrics core (``repro.obs.metrics``)."""

import math
import threading

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    default_latency_buckets,
    get_registry,
    merge_snapshots,
    parse_prometheus,
    render_prometheus,
    snapshot_totals,
)


class TestRegistry:
    def test_default_registry_is_shared(self):
        assert get_registry() is get_registry()
        # The standard engine families ship pre-declared.
        assert "repro_engine_runs_total" in get_registry().names()

    def test_declare_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", labels=("a",))
        second = registry.counter("x_total", "other help", labels=("a",))
        assert first is second

    def test_redeclare_with_different_kind_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already declared"):
            registry.gauge("x_total")

    def test_redeclare_with_different_labels_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("a",))
        with pytest.raises(ValueError, match="already declared"):
            registry.counter("x_total", labels=("a", "b"))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("1bad")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total", labels=("bad-label",))


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("runs_total", labels=("engine",))
        counter.inc(engine="ic3")
        counter.inc(2, engine="bmc")
        counter.labels(engine="ic3").inc()
        assert counter.value(engine="ic3") == 2
        assert counter.value(engine="bmc") == 2

    def test_wrong_label_set_raises(self):
        registry = MetricsRegistry()
        counter = registry.counter("runs_total", labels=("engine",))
        with pytest.raises(ValueError, match="expects labels"):
            counter.inc(motor="ic3")

    def test_negative_increment_raises(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        with pytest.raises(ValueError, match="monotonic"):
            counter.inc(-1)

    def test_increments_survive_their_thread(self):
        """Cells of exited threads stay merged into the total."""
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        worker = threading.Thread(target=lambda: counter.inc(3))
        worker.start()
        worker.join()
        counter.inc()
        assert counter.value() == 4


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        assert gauge.value() is None
        gauge.set(3)
        gauge.set(7)
        assert gauge.value() == 7

    def test_labelled_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("tokens", labels=("tenant",))
        gauge.set(1.5, tenant="a")
        assert gauge.value(tenant="a") == 1.5
        assert gauge.value(tenant="b") is None


class TestHistogram:
    def test_observations_land_in_log_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        (state,) = histogram.collect().values()
        buckets, total, count = state
        assert buckets == [1, 1, 1, 1]  # one per bucket incl. +Inf
        assert count == 4
        assert total == pytest.approx(55.55)

    def test_mean(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds")
        assert histogram.mean() is None
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.mean() == pytest.approx(3.0)

    def test_default_buckets_are_log_spaced(self):
        bounds = default_latency_buckets()
        assert len(bounds) == 17
        assert bounds[0] == pytest.approx(0.001)
        for lo, hi in zip(bounds, bounds[1:]):
            assert hi == pytest.approx(lo * 2)

    def test_unsorted_bounds_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("bad_seconds", buckets=(1.0, 0.5))


class TestSnapshotAndMerge:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", "runs", labels=("engine",)).inc(3, engine="ic3")
        registry.gauge("depth", "queue depth").set(5)
        registry.histogram("lat_seconds", "latency", buckets=(1.0,)).observe(0.5)
        return registry

    def test_snapshot_is_plain_json_shape(self):
        snapshot = self._populated().snapshot()
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        (series,) = snapshot["counters"]["runs_total"]["values"]
        assert series == {"labels": {"engine": "ic3"}, "value": 3}
        (series,) = snapshot["histograms"]["lat_seconds"]["values"]
        assert series["buckets"] == [1, 0] and series["count"] == 1

    def test_merge_adds_counters_and_histograms(self):
        """Merging a snapshot with itself doubles additive metrics."""
        snapshot = self._populated().snapshot()
        merged = merge_snapshots([snapshot, snapshot])
        (series,) = merged["counters"]["runs_total"]["values"]
        assert series["value"] == 6
        (series,) = merged["histograms"]["lat_seconds"]["values"]
        assert series["buckets"] == [2, 0] and series["count"] == 2
        # Gauges are point-in-time: the later snapshot wins, no doubling.
        (series,) = merged["gauges"]["depth"]["values"]
        assert series["value"] == 5

    def test_merge_gauges_last_write_wins(self):
        first = MetricsRegistry()
        first.gauge("depth").set(3)
        second = MetricsRegistry()
        second.gauge("depth").set(9)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        (series,) = merged["gauges"]["depth"]["values"]
        assert series["value"] == 9

    def test_snapshot_totals_condenses_families(self):
        totals = snapshot_totals(self._populated().snapshot())
        assert totals["runs_total"] == 3
        assert totals["lat_seconds"] == {"sum": 0.5, "count": 1}
        assert "depth" not in totals  # gauges have no meaningful total


class TestPrometheusExposition:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", "Engine runs.", labels=("engine",)).inc(
            2, engine="ic3-pl"
        )
        registry.gauge("depth", "Queue depth.").set(4)
        registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0)).observe(0.5)
        families = parse_prometheus(render_prometheus(registry.snapshot()))
        assert families["runs_total"]["type"] == "counter"
        assert families["runs_total"]["samples"] == [
            ("runs_total", {"engine": "ic3-pl"}, 2.0)
        ]
        assert families["depth"]["samples"] == [("depth", {}, 4.0)]
        histogram = families["lat_seconds"]
        assert histogram["type"] == "histogram"
        by_name = {}
        for name, labels, value in histogram["samples"]:
            by_name.setdefault(name, []).append((labels, value))
        # Cumulative buckets: 0.5 falls past 0.1, inside 1.0 and +Inf.
        assert by_name["lat_seconds_bucket"] == [
            ({"le": "0.1"}, 0.0),
            ({"le": "1"}, 1.0),
            ({"le": "+Inf"}, 1.0),
        ]
        assert by_name["lat_seconds_count"] == [({}, 1.0)]

    def test_untouched_unlabelled_metric_exposes_zero(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total", "Never incremented.")
        families = parse_prometheus(render_prometheus(registry.snapshot()))
        assert families["quiet_total"]["samples"] == [("quiet_total", {}, 0.0)]

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", labels=("name",)).inc(name='a"b\\c\nd')
        families = parse_prometheus(render_prometheus(registry.snapshot()))
        ((_, labels, value),) = families["odd_total"]["samples"]
        assert value == 1.0 and labels["name"] == 'a\\"b\\\\c\\nd'

    def test_parser_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="without a TYPE"):
            parse_prometheus("orphan_total 3\n")

    def test_parser_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus("# TYPE x_total rainbow\nx_total 1\n")

    def test_parser_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("# TYPE x_total counter\nx_total\n")

    def test_parser_rejects_garbage_labels(self):
        with pytest.raises(ValueError, match="malformed labels"):
            parse_prometheus('# TYPE x_total counter\nx_total{a="1" junk} 1\n')

    def test_parser_rejects_unparseable_value(self):
        with pytest.raises(ValueError, match="unparseable value"):
            parse_prometheus("# TYPE x_total counter\nx_total banana\n")

    def test_parser_requires_histogram_inf_bucket(self):
        text = (
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="1"} 1\n'
            "lat_seconds_sum 0.5\n"
            "lat_seconds_count 1\n"
        )
        with pytest.raises(ValueError, match=r"missing its \+Inf bucket"):
            parse_prometheus(text)

    def test_parser_requires_histogram_sum_and_count(self):
        text = (
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="+Inf"} 1\n'
        )
        with pytest.raises(ValueError, match="missing _sum/_count"):
            parse_prometheus(text)

    def test_parser_accepts_special_values(self):
        families = parse_prometheus("# TYPE x gauge\nx +Inf\n")
        ((_, _, value),) = families["x"]["samples"]
        assert value == math.inf
