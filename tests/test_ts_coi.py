"""Tests for cone-of-influence reduction."""

import pytest

from repro.aiger import AIG
from repro.benchgen import (
    fifo_controller,
    johnson_counter,
    modular_counter,
    token_ring,
)
from repro.core import IC3, CheckResult, IC3Options, check_certificate
from repro.ts import coi_variables, reduce_to_coi


def _with_dead_logic(case, extra_latches=4):
    """Append latches and gates that cannot influence the property."""
    aig = case.aig
    free = aig.add_input("noise")
    previous = free
    for index in range(extra_latches):
        latch = aig.add_latch(init=0, name=f"dead{index}")
        aig.set_latch_next(latch, aig.xor_gate(previous, latch))
        previous = latch
    aig.add_output(previous)  # observable, but not the checked property
    return case


class TestConeComputation:
    def test_cone_of_isolated_property(self):
        aig = AIG()
        relevant = aig.add_latch(init=0)
        aig.set_latch_next(relevant, aig.negate(relevant))
        irrelevant = aig.add_latch(init=0)
        aig.set_latch_next(irrelevant, irrelevant)
        aig.add_bad(relevant)
        cone = coi_variables(aig)
        assert (relevant >> 1) in cone
        assert (irrelevant >> 1) not in cone

    def test_cone_follows_latch_next_functions(self):
        aig = AIG()
        a = aig.add_latch(init=0)
        b = aig.add_latch(init=0)
        aig.set_latch_next(a, b)      # a depends on b
        aig.set_latch_next(b, b)
        aig.add_bad(a)
        cone = coi_variables(aig)
        assert {a >> 1, b >> 1} <= cone

    def test_constraints_always_in_cone(self):
        aig = AIG()
        latch = aig.add_latch(init=0)
        aig.set_latch_next(latch, latch)
        other = aig.add_latch(init=0)
        aig.set_latch_next(other, other)
        aig.add_bad(latch)
        aig.add_constraint(aig.negate(other))
        cone = coi_variables(aig)
        assert (other >> 1) in cone

    def test_errors(self):
        aig = AIG()
        latch = aig.add_latch()
        aig.set_latch_next(latch, latch)
        with pytest.raises(ValueError):
            coi_variables(aig)
        aig.add_bad(latch)
        with pytest.raises(ValueError):
            coi_variables(aig, property_index=5)


class TestReduction:
    @pytest.mark.parametrize(
        "case_factory",
        [
            lambda: token_ring(4),
            lambda: modular_counter(3, modulus=6, bad_value=4),
            lambda: fifo_controller(3),
            lambda: johnson_counter(4, safe=False),
        ],
        ids=lambda f: f().name,
    )
    def test_dead_logic_removed_and_verdict_preserved(self, case_factory):
        case = _with_dead_logic(case_factory())
        reduced, info = reduce_to_coi(case.aig)

        assert info.reduced
        assert info.removed_latches >= 4
        assert reduced.num_latches < case.aig.num_latches

        original = IC3(case.aig, IC3Options().with_prediction()).check(time_limit=60)
        shrunk = IC3(reduced, IC3Options().with_prediction()).check(time_limit=60)
        assert original.result == shrunk.result == case.expected
        if shrunk.result == CheckResult.SAFE:
            assert check_certificate(reduced, shrunk.certificate)

    def test_reduction_is_identity_when_everything_matters(self):
        case = token_ring(5)
        reduced, info = reduce_to_coi(case.aig)
        assert not info.reduced
        assert reduced.num_latches == case.aig.num_latches
        assert reduced.num_inputs == case.aig.num_inputs

    def test_latch_resets_and_names_preserved(self):
        case = _with_dead_logic(fifo_controller(2))
        reduced, _ = reduce_to_coi(case.aig)
        kept_names = [latch.name for latch in reduced.latches]
        assert all(not (name or "").startswith("dead") for name in kept_names)
        assert all(latch.init == 0 for latch in reduced.latches)

    def test_reduced_circuit_behaviour_matches_on_property(self):
        case = _with_dead_logic(modular_counter(3, modulus=6, bad_value=3))
        reduced, _ = reduce_to_coi(case.aig)
        # Simulate both circuits with arbitrary inputs: the bad signal must agree.
        steps = 8
        inputs_full = [
            {lit: bool((step + i) % 2) for i, lit in enumerate(case.aig.inputs)}
            for step in range(steps)
        ]
        inputs_reduced = [
            {lit: bool((step + i) % 2) for i, lit in enumerate(reduced.inputs)}
            for step in range(steps)
        ]
        full_trace = case.aig.simulate(inputs_full)
        reduced_trace = reduced.simulate(inputs_reduced)
        assert [r["bads"][0] for r in full_trace] == [
            r["bads"][0] for r in reduced_trace
        ]

    def test_info_counters_consistent(self):
        case = _with_dead_logic(token_ring(3))
        _, info = reduce_to_coi(case.aig)
        assert info.kept_latches + info.removed_latches == case.aig.num_latches
        assert info.kept_inputs + info.removed_inputs == case.aig.num_inputs
        assert info.kept_ands + info.removed_ands == case.aig.num_ands
