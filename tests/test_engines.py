"""Tests for the pluggable engine layer: protocol, registry, adapters, portfolio."""

import time

import pytest

from repro.benchgen import modular_counter, parity_counter, token_ring
from repro.core import CheckOutcome, CheckResult, IC3Options
from repro.engines import (
    BMCEngine,
    DEFAULT_PORTFOLIO,
    Engine,
    EngineError,
    IC3Engine,
    KInductionEngine,
    PortfolioEngine,
    available_engines,
    canonical_name,
    create_engine,
    register_engine,
    resolve_engine,
)


class _SleepyEngine:
    """Test double that ignores its cooperative budget (a 'stuck SAT call')."""

    name = "sleepy"

    def __init__(self, aig, options=None, property_index=0, delay=60.0, **_):
        self.delay = delay

    def check(self, time_limit=None):
        time.sleep(self.delay)
        return CheckOutcome(result=CheckResult.UNKNOWN, engine=self.name)


register_engine(
    "sleepy-test", lambda aig, **kw: _SleepyEngine(aig, **kw), overwrite=True
)


class TestRegistry:
    def test_default_engines_registered(self):
        names = available_engines()
        for expected in ("ic3", "ic3-pl", "bmc", "kind", "portfolio"):
            assert expected in names

    def test_alias_resolution(self):
        assert canonical_name("k-induction") == "kind"
        assert resolve_engine("k-induction") is resolve_engine("kind")
        assert "k-induction" in available_engines(include_aliases=True)
        assert "k-induction" not in available_engines()

    def test_unknown_engine_raises_keyerror(self):
        with pytest.raises(KeyError, match="available"):
            create_engine("no-such-engine", token_ring(3).aig)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(EngineError):
            register_engine("ic3", lambda aig, **kw: None)

    def test_custom_registration_and_overwrite(self):
        @register_engine("custom-test", overwrite=True)
        def _factory(aig, **kwargs):
            return BMCEngine(aig, **kwargs)

        engine = create_engine("custom-test", token_ring(3).aig, max_depth=7)
        assert engine.max_depth == 7

    def test_created_engines_satisfy_protocol(self):
        aig = token_ring(3).aig
        for name in ("ic3", "ic3-pl", "bmc", "kind", "portfolio"):
            assert isinstance(create_engine(name, aig), Engine)


class TestAdapters:
    def test_ic3_engine_names_follow_prediction(self):
        aig = token_ring(3).aig
        assert create_engine("ic3", aig).name == "ic3"
        assert create_engine("ic3-pl", aig).name == "ic3-pl"
        assert IC3Engine(aig).name == "ic3"
        assert IC3Engine(aig, IC3Options().with_prediction()).name == "ic3-pl"

    def test_ic3_pl_factory_enables_prediction_on_passed_options(self):
        engine = create_engine("ic3-pl", token_ring(3).aig, options=IC3Options())
        assert engine.options.enable_prediction

    def test_uniform_check_signature_and_outcomes(self):
        safe = token_ring(3).aig
        assert create_engine("ic3", safe).check(time_limit=20).result == CheckResult.SAFE
        assert create_engine("kind", safe).check(time_limit=20).result == CheckResult.SAFE
        # BMC alone cannot prove safety.
        assert create_engine("bmc", safe).check(time_limit=20).result == CheckResult.UNKNOWN

    def test_bmc_engine_finds_counterexample(self):
        unsafe = modular_counter(3, modulus=8, bad_value=2).aig
        outcome = BMCEngine(unsafe, max_depth=5).check(time_limit=20)
        assert outcome.result == CheckResult.UNSAFE
        assert outcome.trace is not None

    def test_kinduction_engine_respects_max_k(self):
        aig = modular_counter(4, modulus=14, bad_value=15).aig
        outcome = KInductionEngine(aig, max_k=1).check(time_limit=20)
        assert outcome.result in (CheckResult.UNKNOWN, CheckResult.SAFE)


class TestPortfolio:
    def test_default_members(self):
        engine = PortfolioEngine(token_ring(3).aig)
        assert engine.engines == DEFAULT_PORTFOLIO

    def test_rejects_unknown_member(self):
        with pytest.raises(KeyError):
            PortfolioEngine(token_ring(3).aig, engines=("ic3", "bogus"))

    def test_rejects_empty_members(self):
        with pytest.raises(ValueError):
            PortfolioEngine(token_ring(3).aig, engines=())

    def test_duplicate_members_get_diversified_labels(self):
        # Duplicated kinds are allowed and auto-labelled; diversification
        # gives each a distinct seed (and jitters duplicated IC3 configs).
        engine = PortfolioEngine(token_ring(3).aig, engines=("ic3", "ic3", "bmc"))
        labels = [plan.label for plan in engine._plan]
        assert labels == ["ic3#1", "ic3#2", "bmc"]
        seeds = [plan.kwargs.get("seed") for plan in engine._plan]
        assert len(set(seeds)) == len(seeds)
        assert engine._plan[0].options != engine._plan[1].options

    def test_alias_duplicates_are_labelled_together(self):
        # "k-induction" is an alias of "kind" — duplicates by canonical name.
        engine = PortfolioEngine(token_ring(3).aig, engines=("kind", "k-induction"))
        labels = [plan.label for plan in engine._plan]
        assert labels == ["kind#1", "k-induction#2"]

    def test_safe_race_records_winner(self):
        outcome = PortfolioEngine(token_ring(3).aig).check(time_limit=30)
        assert outcome.result == CheckResult.SAFE
        assert outcome.engine == "portfolio"
        assert outcome.winner in DEFAULT_PORTFOLIO
        assert "won by" in outcome.summary()

    def test_unsafe_race_records_winner(self):
        outcome = PortfolioEngine(token_ring(3, safe=False).aig).check(time_limit=30)
        assert outcome.result == CheckResult.UNSAFE
        assert outcome.winner in DEFAULT_PORTFOLIO

    def test_portfolio_matches_standalone_winner_verdict(self):
        aig = token_ring(3, safe=False).aig
        outcome = PortfolioEngine(aig, engines=("bmc", "ic3")).check(time_limit=30)
        standalone = create_engine(outcome.winner, aig).check(time_limit=30)
        assert outcome.result == standalone.result

    def test_stuck_member_does_not_block_the_race(self):
        aig = modular_counter(3, modulus=8, bad_value=2).aig
        start = time.perf_counter()
        outcome = PortfolioEngine(aig, engines=("sleepy-test", "bmc")).check(
            time_limit=30
        )
        elapsed = time.perf_counter() - start
        assert outcome.result == CheckResult.UNSAFE
        assert outcome.winner == "bmc"
        assert elapsed < 10.0

    def test_all_members_unknown(self):
        # BMC cannot prove safety, so a BMC-only portfolio stays inconclusive.
        outcome = PortfolioEngine(token_ring(3).aig, engines=("bmc",)).check(
            time_limit=30
        )
        assert outcome.result == CheckResult.UNKNOWN
        assert outcome.winner is None
        assert "bmc" in outcome.reason

    def test_hard_time_limit_on_stuck_members(self):
        start = time.perf_counter()
        outcome = PortfolioEngine(
            token_ring(3).aig, engines=("sleepy-test",), grace=0.2
        ).check(time_limit=0.5)
        elapsed = time.perf_counter() - start
        assert outcome.result == CheckResult.UNKNOWN
        assert "time limit" in outcome.reason
        assert elapsed < 2.0  # ~2x the 0.5 s budget, with scheduling slack

    def test_jobs_bound_still_reaches_later_members(self):
        # With one slot, the sleepy member must be beaten by the time limit
        # machinery... so put the fast engine first and confirm ordering works.
        aig = modular_counter(3, modulus=8, bad_value=2).aig
        outcome = PortfolioEngine(aig, engines=("bmc", "sleepy-test"), jobs=1).check(
            time_limit=30
        )
        assert outcome.result == CheckResult.UNSAFE
        assert outcome.winner == "bmc"

    def test_parity_counter_portfolio_proves_quickly(self):
        outcome = PortfolioEngine(parity_counter(4).aig).check(time_limit=30)
        assert outcome.result == CheckResult.SAFE
