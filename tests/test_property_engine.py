"""Property-based cross-validation of the engines on random circuits.

Random small AIGs are generated from a hypothesis-drawn recipe; IC3 (with
and without prediction), BMC and explicit-state reachability must agree on
every one of them, and every certificate / counterexample must validate.
This is the strongest end-to-end guard against soundness bugs anywhere in
the stack (encoding, SAT solver, frames, generalization, prediction).
"""

import itertools

from hypothesis import given, settings, strategies as st, HealthCheck

from repro.aiger import AIG
from repro.core import (
    IC3,
    BMC,
    CheckResult,
    IC3Options,
    check_certificate,
    check_counterexample,
)


def build_random_aig(recipe):
    """Deterministically build a small AIG from a drawn recipe."""
    num_latches, num_inputs, gate_recipe, bad_recipe, init_bits = recipe
    aig = AIG()
    inputs = [aig.add_input(f"in{i}") for i in range(num_inputs)]
    latches = [
        aig.add_latch(init=(init_bits >> i) & 1, name=f"l{i}")
        for i in range(num_latches)
    ]
    signals = list(inputs) + list(latches) + [1]  # TRUE is available too

    for kind, a_index, b_index, negate_a, negate_b in gate_recipe:
        a = signals[a_index % len(signals)]
        b = signals[b_index % len(signals)]
        if negate_a:
            a = aig.negate(a)
        if negate_b:
            b = aig.negate(b)
        if kind == 0:
            signals.append(aig.add_and(a, b))
        elif kind == 1:
            signals.append(aig.or_gate(a, b))
        else:
            signals.append(aig.xor_gate(a, b))

    # Next-state functions: the last len(latches) signals drive the latches.
    for index, latch in enumerate(latches):
        source = signals[-(index + 1)] if len(signals) > index else latch
        aig.set_latch_next(latch, source)

    bad_index, negate_bad = bad_recipe
    bad = signals[bad_index % len(signals)]
    if negate_bad:
        bad = aig.negate(bad)
    # Avoid the degenerate constant-true bad (it is legal but uninteresting).
    if bad == 1:
        bad = latches[0]
    aig.add_bad(bad)
    return aig


def explicit_reachability(aig, max_depth=64):
    """Reference oracle: BFS over the full state space."""
    input_combos = [
        dict(zip(aig.inputs, values))
        for values in itertools.product([False, True], repeat=aig.num_inputs)
    ]
    initial = tuple(bool(l.init) if l.init else False for l in aig.latches)
    visited = {initial}
    frontier = {initial}
    depth = 0
    while frontier and depth <= max_depth:
        next_frontier = set()
        for state in frontier:
            latch_values = {l.lit: v for l, v in zip(aig.latches, state)}
            for inputs in input_combos:
                values = aig._evaluate_combinational(inputs, latch_values)
                if values[aig.bads[0]]:
                    return True, depth
                successor = tuple(values[l.next] for l in aig.latches)
                if successor not in visited:
                    visited.add(successor)
                    next_frontier.add(successor)
        frontier = next_frontier
        depth += 1
    return False, None


recipe_strategy = st.tuples(
    st.integers(min_value=1, max_value=3),        # latches
    st.integers(min_value=0, max_value=2),        # inputs
    st.lists(                                     # gate recipe
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=10),
            st.integers(min_value=0, max_value=10),
            st.booleans(),
            st.booleans(),
        ),
        min_size=1,
        max_size=8,
    ),
    st.tuples(st.integers(min_value=0, max_value=10), st.booleans()),  # bad
    st.integers(min_value=0, max_value=7),        # init bits
)


class TestEnginesAgreeOnRandomCircuits:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(recipe_strategy)
    def test_ic3_with_prediction_matches_explicit_reachability(self, recipe):
        aig = build_random_aig(recipe)
        expected_reachable, expected_depth = explicit_reachability(aig)

        outcome = IC3(aig, IC3Options().with_prediction()).check(time_limit=30)
        assert outcome.result != CheckResult.UNKNOWN
        assert (outcome.result == CheckResult.UNSAFE) == expected_reachable

        if outcome.result == CheckResult.SAFE:
            assert check_certificate(aig, outcome.certificate)
        else:
            assert check_counterexample(aig, outcome.trace)
            assert outcome.trace.depth >= expected_depth

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(recipe_strategy)
    def test_base_and_prediction_engines_agree(self, recipe):
        aig = build_random_aig(recipe)
        base = IC3(aig, IC3Options()).check(time_limit=30)
        predicted = IC3(aig, IC3Options().with_prediction()).check(time_limit=30)
        assert base.result == predicted.result

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(recipe_strategy)
    def test_bmc_agrees_on_unsafe_circuits(self, recipe):
        aig = build_random_aig(recipe)
        expected_reachable, expected_depth = explicit_reachability(aig)
        if not expected_reachable:
            return
        outcome = BMC(aig).check(max_depth=expected_depth + 2)
        assert outcome.result == CheckResult.UNSAFE
        assert outcome.trace.depth == expected_depth
