"""Unit tests for the individual reduction passes."""

import pytest

from repro.aiger import AIG, FALSE_LIT, TRUE_LIT
from repro.benchgen import fifo_controller, monitored_counter, token_ring
from repro.reduce import (
    ConeOfInfluencePass,
    EquivalentLatchPass,
    StructuralHashPass,
    TernaryConstantPass,
    equivalent_latch_classes,
    ternary_constants,
)
from repro.reduce.base import CONST, FREE, KEPT, MERGED, rebuild_aig


def _toggle(aig, init=0, name=None):
    latch = aig.add_latch(init=init, name=name)
    aig.set_latch_next(latch, aig.negate(latch))
    return latch


class TestRebuild:
    def test_identity_rebuild_preserves_shape(self):
        aig = token_ring(4).aig
        rebuilt = rebuild_aig(aig)
        assert rebuilt.aig.num_inputs == aig.num_inputs
        assert rebuilt.aig.num_latches == aig.num_latches
        assert rebuilt.aig.num_ands == aig.num_ands
        assert rebuilt.input_map == list(range(aig.num_inputs))
        assert rebuilt.latch_map == list(range(aig.num_latches))

    def test_dead_gates_dropped(self):
        aig = AIG()
        a = aig.add_input()
        latch = aig.add_latch(init=0)
        aig.set_latch_next(latch, latch)
        aig.add_and(a, latch)  # feeds nothing
        aig.add_bad(latch)
        rebuilt = rebuild_aig(aig)
        assert rebuilt.aig.num_ands == 0

    def test_constant_replacement_folds_logic(self):
        aig = AIG()
        a = aig.add_input()
        latch = aig.add_latch(init=1)
        aig.set_latch_next(latch, latch)
        aig.add_bad(aig.add_and(a, latch))
        rebuilt = rebuild_aig(aig, replace={latch: TRUE_LIT})
        # bad = a & TRUE folds to just a; the latch disappears.
        assert rebuilt.aig.num_latches == 0
        assert rebuilt.aig.num_ands == 0
        assert rebuilt.latch_map == [None]


class TestConeOfInfluencePass:
    def test_drops_out_of_cone_state(self):
        aig = AIG()
        relevant = _toggle(aig, name="relevant")
        _toggle(aig, name="dead")
        aig.add_bad(relevant)
        result = ConeOfInfluencePass().run(aig)
        assert result.aig.num_latches == 1
        assert result.latch_fates[0].kind == KEPT
        assert result.latch_fates[1].kind == FREE
        assert result.property_index == 0

    def test_selects_one_property(self):
        aig = AIG()
        first = _toggle(aig)
        second = _toggle(aig)
        aig.add_bad(first)
        aig.add_bad(second)
        result = ConeOfInfluencePass().run(aig, property_index=1)
        assert len(result.aig.bads) == 1
        assert result.aig.num_latches == 1
        assert result.property_index == 0


class TestTernaryConstantPass:
    def test_finds_stuck_latches(self):
        aig = AIG()
        enable = aig.add_input()
        stuck = aig.add_latch(init=0, name="stuck")
        aig.set_latch_next(stuck, aig.add_and(stuck, enable))
        free_latch = aig.add_latch(init=0, name="free")
        aig.set_latch_next(free_latch, enable)
        aig.add_bad(aig.add_and(stuck, free_latch))
        constants = ternary_constants(aig)
        assert constants == {stuck: False}

    def test_cascaded_constants(self):
        aig = AIG()
        stuck = aig.add_latch(init=1)
        aig.set_latch_next(stuck, stuck)
        follower = aig.add_latch(init=1)
        aig.set_latch_next(follower, stuck)
        aig.add_bad(aig.negate(follower))
        constants = ternary_constants(aig)
        assert constants == {stuck: True, follower: True}

    def test_uninitialized_latches_never_constant(self):
        aig = AIG()
        latch = aig.add_latch(init=None)
        aig.set_latch_next(latch, latch)
        aig.add_bad(latch)
        assert ternary_constants(aig) == {}

    def test_pass_sweeps_and_folds(self):
        aig = AIG()
        enable = aig.add_input()
        stuck = aig.add_latch(init=0)
        aig.set_latch_next(stuck, aig.add_and(stuck, enable))
        live = aig.add_latch(init=0)
        aig.set_latch_next(live, aig.negate(live))
        # bad = live & !stuck simplifies to live once stuck == 0 is known.
        aig.add_bad(aig.add_and(live, aig.negate(stuck)))
        result = TernaryConstantPass().run(aig)
        assert result.aig.num_latches == 1
        assert result.latch_fates[0] .kind == CONST
        assert result.latch_fates[0].value is False
        assert result.latch_fates[1].kind == KEPT
        assert result.info.details["constant_latches"] == 1


class TestEquivalentLatchPass:
    def test_merges_lockstep_copies(self):
        aig = AIG()
        tick = aig.add_input()
        first = aig.add_latch(init=0)
        second = aig.add_latch(init=0)
        aig.set_latch_next(first, aig.xor_gate(first, tick))
        aig.set_latch_next(second, aig.xor_gate(second, tick))
        aig.add_bad(aig.xor_gate(first, second))
        classes = equivalent_latch_classes(aig)
        assert classes == [[0, 1]]
        result = EquivalentLatchPass().run(aig)
        assert result.aig.num_latches == 1
        assert result.latch_fates[1].kind == MERGED
        assert result.latch_fates[1].rep_index == 0
        assert result.latch_fates[1].negated is False
        # bad = first ^ first folds to constant false.
        assert result.aig.bads == [FALSE_LIT]

    def test_merges_anti_equivalent_latches(self):
        aig = AIG()
        tick = aig.add_input()
        low = aig.add_latch(init=0)
        high = aig.add_latch(init=1)
        aig.set_latch_next(low, aig.xor_gate(low, tick))
        aig.set_latch_next(high, aig.negate(aig.xor_gate(low, tick)))
        aig.add_bad(aig.xnor_gate(low, high))
        classes = equivalent_latch_classes(aig)
        assert classes == [[0, 1]]
        result = EquivalentLatchPass().run(aig)
        assert result.latch_fates[1].kind == MERGED
        assert result.latch_fates[1].negated is True

    def test_does_not_merge_diverging_latches(self):
        aig = AIG()
        a = aig.add_input()
        b = aig.add_input()
        first = aig.add_latch(init=0)
        second = aig.add_latch(init=0)
        aig.set_latch_next(first, a)
        aig.set_latch_next(second, b)
        aig.add_bad(aig.add_and(first, second))
        assert equivalent_latch_classes(aig) == []

    def test_does_not_merge_uninitialized_latches(self):
        aig = AIG()
        first = aig.add_latch(init=None)
        second = aig.add_latch(init=None)
        aig.set_latch_next(first, first)
        aig.set_latch_next(second, second)
        aig.add_bad(aig.add_and(first, second))
        assert equivalent_latch_classes(aig) == []

    def test_simulation_agrees_after_merge(self):
        case = monitored_counter(3, noise=0)
        result = EquivalentLatchPass().run(case.aig)
        assert result.info.details["merged_latches"] >= 3
        steps = 10
        stimulus_full = [
            {lit: bool(step % 2 == 0) for lit in case.aig.inputs}
            for step in range(steps)
        ]
        stimulus_reduced = [
            {lit: bool(step % 2 == 0) for lit in result.aig.inputs}
            for step in range(steps)
        ]
        full = case.aig.simulate(stimulus_full)
        reduced = result.aig.simulate(stimulus_reduced)
        assert [r["bads"][0] for r in full] == [r["bads"][0] for r in reduced]


class TestStructuralHashPass:
    def test_noop_on_fresh_circuit(self):
        aig = token_ring(5).aig
        result = StructuralHashPass().run(aig)
        assert result.aig.num_ands == aig.num_ands
        assert all(fate.kind == KEPT for fate in result.latch_fates)

    def test_never_grows_and_keeps_state(self):
        aig = fifo_controller(3).aig
        result = StructuralHashPass().run(aig)
        assert result.aig.num_ands <= aig.num_ands
        assert result.aig.num_latches == aig.num_latches

    def test_folds_after_manual_duplication(self):
        aig = AIG()
        a = aig.add_input()
        latch = aig.add_latch(init=0)
        aig.set_latch_next(latch, a)
        # Build the same gate twice through different literal spellings.
        gate = aig.add_and(a, latch)
        aig.add_bad(gate)
        other = aig.add_and(latch, a)
        aig.add_bad(other)
        result = StructuralHashPass().run(aig)
        assert result.aig.num_ands == 1


class TestPassErrors:
    def test_rebuild_requires_a_property(self):
        aig = AIG()
        latch = aig.add_latch(init=0)
        aig.set_latch_next(latch, latch)
        from repro.reduce import ReductionError

        with pytest.raises(ReductionError):
            rebuild_aig(aig)

    def test_coi_property_index_out_of_range(self):
        aig = AIG()
        latch = aig.add_latch(init=0)
        aig.set_latch_next(latch, latch)
        aig.add_bad(latch)
        with pytest.raises(ValueError):
            ConeOfInfluencePass().run(aig, property_index=3)
