"""End-to-end tracing tests: CLI, killed workers, and the serve endpoint."""

import json
import os
import time

import pytest

from repro.benchgen import token_ring
from repro.cli import main
from repro.harness.pool import map_with_hard_timeout
from repro.obs.export import read_jsonl_events, validate_trace_file
from repro.obs.tracer import TRACE_DIR_ENV, get_tracer, maybe_install_worker_tracer
from repro.aiger.writer import to_aag_string


@pytest.fixture(autouse=True)
def _no_ambient_trace(monkeypatch):
    monkeypatch.delenv(TRACE_DIR_ENV, raising=False)


@pytest.fixture()
def model_file(tmp_path):
    path = tmp_path / "ring.aag"
    path.write_text(to_aag_string(token_ring(3, safe=True).aig))
    return str(path)


class TestCliTracing:
    def test_check_writes_valid_trace(self, tmp_path, model_file, capsys):
        trace = str(tmp_path / "trace.json")
        assert main(["check", model_file, "--trace-out", trace]) == 0
        assert f"Trace written to {trace}" in capsys.readouterr().out
        assert validate_trace_file(trace) == []
        document = json.load(open(trace))
        cats = {event.get("cat") for event in document["traceEvents"]}
        # The whole stack shows up in one run: session wrapper, engine
        # adapter, IC3 phases, SAT kernel and the reduction pipeline.
        assert {"session", "engine", "ic3", "sat", "reduce"} <= cats

    def test_tracer_uninstalled_after_cli_run(self, tmp_path, model_file):
        main(["check", model_file, "--trace-out", str(tmp_path / "t.json")])
        assert get_tracer().enabled is False

    def test_trace_report_command(self, tmp_path, model_file, capsys):
        trace = str(tmp_path / "trace.json")
        main(["check", model_file, "--trace-out", trace])
        capsys.readouterr()
        assert main(["trace-report", trace, "--validate"]) == 0
        out = capsys.readouterr().out
        assert "trace schema OK" in out
        assert "ic3" in out and "sat" in out

    def test_trace_report_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "X"}]}')
        assert main(["trace-report", str(bad), "--validate"]) == 1
        missing = tmp_path / "missing.json"
        assert main(["trace-report", str(missing)]) == 2


def _stuck_worker(payload):
    tracer = get_tracer()
    for i in range(50):
        tracer.instant(f"progress-{i}", cat="harness", step=i)
    time.sleep(60)  # way past the hard deadline; SIGKILL ends us
    return "unreachable"


class TestKilledWorkerPostMortem:
    def test_sigkilled_worker_leaves_flight_dump(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        (result,) = map_with_hard_timeout(
            _stuck_worker, ["job"], timeout=0.2, jobs=1, grace=0.2
        )
        assert result.timed_out
        flights = [n for n in os.listdir(tmp_path) if n.startswith("flight-harness-")]
        assert len(flights) == 1
        events = read_jsonl_events(str(tmp_path / flights[0]))
        # The ring snapshot survived the kill and is readable post mortem.
        assert events, "flight recorder left no readable events"
        assert any(e["name"].startswith("progress-") for e in events)

    def test_worker_activation_requires_env(self):
        assert maybe_install_worker_tracer("harness") is None


class TestServeTraceEndpoint:
    def test_job_trace_served_and_404_for_unknown(self, tmp_path):
        from test_serve_http import SAFE_TEXT, ServerUnderTest

        server = ServerUnderTest(trace_dir=str(tmp_path)).start()
        try:
            status, payload, _ = server.request(
                "/jobs", data=SAFE_TEXT.encode(), method="POST"
            )
            assert status in (200, 202)
            job_id = payload["id"]
            server.poll_done(job_id)
            status, document, _ = server.request(f"/jobs/{job_id}/trace")
            assert status == 200
            names = {e["name"] for e in document["traceEvents"]}
            assert "serve.job" in names
            status, payload, _ = server.request("/jobs/nonexistent/trace")
            assert status == 404
        finally:
            server.stop()

    def test_404_when_tracing_disabled(self):
        from test_serve_http import SAFE_TEXT, ServerUnderTest

        server = ServerUnderTest().start()
        try:
            status, payload, _ = server.request(
                "/jobs", data=SAFE_TEXT.encode(), method="POST"
            )
            job_id = payload["id"]
            server.poll_done(job_id)
            status, payload, _ = server.request(f"/jobs/{job_id}/trace")
            assert status == 404
        finally:
            server.stop()
