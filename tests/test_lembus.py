"""Unit tests for the shared-memory lemma bus and its queue fallback.

The bus is deliberately dumb — length-prefixed records in a ring, no
consensus — because every reader revalidates what it drains.  These tests
pin down the transport contract both implementations share: publish
filtering, member-local echo suppression, overflow accounting, and clean
teardown (no leaked shm segments).
"""

import glob
import os
import time

import pytest

from repro.engines.lembus import (
    DEFAULT_CAPACITY,
    MAX_CLAUSE_LITS,
    BusRecord,
    LemmaBusError,
    QueueLemmaBus,
    SharePolicy,
    ShmRingBus,
    _decode_records,
    _encode_record,
    create_bus,
    open_port,
)


def _drain_until(port, expect, timeout=2.0):
    """Drain repeatedly until ``expect`` records arrived (queue latency)."""
    records, lost = [], 0
    deadline = time.monotonic() + timeout
    while len(records) < expect and time.monotonic() < deadline:
        batch, dropped = port.drain()
        records.extend(batch)
        lost += dropped
        if len(records) < expect:
            time.sleep(0.01)
    return records, lost


class TestRecordCodec:
    def test_roundtrip(self):
        data = _encode_record(2, 5, (1, -3, 7)) + _encode_record(0, 1, (-2,))
        records = _decode_records(data)
        assert records == [
            BusRecord(member=2, level=5, clause=(1, -3, 7)),
            BusRecord(member=0, level=1, clause=(-2,)),
        ]

    def test_truncated_tail_is_dropped(self):
        data = _encode_record(1, 2, (4, -5))
        records = _decode_records(data[:-2])
        assert records == []

    def test_corrupted_length_stops_parsing(self):
        good = _encode_record(0, 2, (1,))
        bad = b"\xff" * 16
        assert _decode_records(good + bad) == [
            BusRecord(member=0, level=2, clause=(1,))
        ]


@pytest.mark.parametrize("transport", ["shm", "queue"])
class TestBusTransport:
    def _make(self, transport, **kwargs):
        bus = create_bus(3, transport=transport, **kwargs)
        assert bus.transport in ("shm", "queue")
        return bus

    def test_fanout_excludes_author(self, transport):
        bus = self._make(transport)
        try:
            p0 = open_port(bus.port_handle(0))
            p1 = open_port(bus.port_handle(1))
            p2 = open_port(bus.port_handle(2))
            assert p0.publish(3, [1, -2])
            assert p1.publish(2, [-4])
            seen2, lost2 = _drain_until(p2, expect=2)
            assert lost2 == 0
            assert {r.member for r in seen2} == {0, 1}
            seen0, _ = _drain_until(p0, expect=1)
            assert [r.member for r in seen0] == [1]  # own record filtered
            assert bus.total_published() == 2
            for port in (p0, p1, p2):
                port.close()
        finally:
            bus.close()
            bus.unlink()

    def test_policy_filters_at_publish(self, transport):
        bus = self._make(transport, policy=SharePolicy(max_lits=2, min_level=3))
        try:
            port = open_port(bus.port_handle(0))
            assert not port.publish(3, [1, 2, 3])   # too long
            assert not port.publish(2, [1])          # level too low
            assert port.publish(3, [1, -2])
            assert not port.publish(5, list(range(1, MAX_CLAUSE_LITS + 2)))
            assert bus.total_published() == 1
            assert port.published == 1
            assert port.dropped_oversize >= 1
            port.close()
        finally:
            bus.close()
            bus.unlink()

    def test_overflow_is_counted_not_fatal(self, transport):
        if transport == "shm":
            bus = ShmRingBus(capacity=4096)
        else:
            bus = QueueLemmaBus(2, capacity_records=16)
        try:
            writer = open_port(bus.port_handle(0))
            reader = open_port(bus.port_handle(1))
            for i in range(2000):
                writer.publish(4, [1 + (i % 30), -40])
            time.sleep(0.1)  # let queue feeder threads catch up
            records, lost = reader.drain()
            # Either some records were lost to ring lag (counted), or the
            # transport buffered everything; never an exception.
            assert lost >= 0 and reader.overflows == (1 if lost else 0) or lost == 0
            assert all(isinstance(r, BusRecord) for r in records)
            # The bus stays usable after an overflow.
            writer.publish(4, [7, -8])
            follow_up, _ = _drain_until(reader, expect=1)
            assert any(r.clause == (7, -8) for r in follow_up)
            writer.close()
            reader.close()
        finally:
            bus.close()
            bus.unlink()


class TestShmLifecycle:
    def test_unlink_removes_segment(self):
        bus = ShmRingBus(capacity=4096)
        name = bus.name
        path = f"/dev/shm/{name.lstrip('/')}"
        had_dev_shm = os.path.exists(path)
        bus.close()
        bus.unlink()
        if had_dev_shm:
            assert not os.path.exists(path)

    def test_no_segment_leak_across_create_close_cycles(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        before = set(glob.glob("/dev/shm/psm_*") + glob.glob("/dev/shm/*psm*"))
        for _ in range(5):
            bus = ShmRingBus(capacity=4096)
            port = open_port(bus.port_handle(0))
            port.publish(3, [1, -2])
            port.close()
            bus.close()
            bus.unlink()
        after = set(glob.glob("/dev/shm/psm_*") + glob.glob("/dev/shm/*psm*"))
        assert after - before == set()

    def test_too_small_capacity_rejected(self):
        with pytest.raises(LemmaBusError):
            ShmRingBus(capacity=16)

    def test_create_bus_unknown_transport(self):
        with pytest.raises(LemmaBusError):
            create_bus(2, transport="pigeon")

    def test_default_capacity_is_sane(self):
        assert DEFAULT_CAPACITY >= 1 << 16
