"""CLI surface of the multi-property & liveness subsystem.

Includes the subsystem's acceptance scenario: ``repro-check check
--all-properties`` on an AIGER 1.9 file with mixed safe/unsafe bads and a
justice property returns one validated verdict per property in a single
run.
"""

import json

import pytest

from repro.aiger import write_aag, write_aig
from repro.benchgen.liveness import mixed_properties, token_ring_live
from repro.cli import build_parser, main

pytestmark = pytest.mark.liveness


@pytest.fixture()
def mixed_model(tmp_path):
    path = tmp_path / "mixed.aag"
    write_aag(mixed_properties(3).aig, path)
    return str(path)


@pytest.fixture()
def mixed_model_binary(tmp_path):
    path = tmp_path / "mixed.aig"
    write_aig(mixed_properties(3).aig, path)
    return str(path)


@pytest.fixture()
def live_safe_model(tmp_path):
    path = tmp_path / "livering_safe.aag"
    write_aag(token_ring_live(3, safe=True).aig, path)
    return str(path)


@pytest.fixture()
def live_buggy_model(tmp_path):
    path = tmp_path / "livering_buggy.aag"
    write_aag(token_ring_live(3, safe=False).aig, path)
    return str(path)


class TestParserFlags:
    def test_all_properties_flag(self):
        args = build_parser().parse_args(["check", "m.aag", "--all-properties"])
        assert args.all_properties is True
        assert args.property is None

    def test_property_selection_flag(self):
        args = build_parser().parse_args(["check", "m.aag", "--property", "2"])
        assert args.property == 2

    def test_liveness_suite_choice(self):
        args = build_parser().parse_args(["evaluate", "--suite", "liveness"])
        assert args.suite == "liveness"

    def test_liveness_engines_are_choices(self):
        for engine in ("l2s", "klive"):
            args = build_parser().parse_args(["check", "m.aag", "--engine", engine])
            assert args.engine == engine


class TestAllProperties:
    def test_acceptance_scenario_one_run_all_verdicts(self, mixed_model, capsys):
        # Mixed safe/unsafe bads + one justice property, single run.
        assert main(["check", mixed_model, "--all-properties", "--max-k", "8"]) == 1
        out = capsys.readouterr().out
        assert out.count("safe") >= 2  # b0 and j0 prove
        assert "unsafe" in out  # b1 refuted
        assert "justice" in out
        assert "aggregate: unsafe" in out
        assert "WARNING" not in out  # every witness validated

    def test_acceptance_scenario_binary_input(self, mixed_model_binary, capsys):
        assert main(
            ["check", mixed_model_binary, "--all-properties", "--max-k", "8"]
        ) == 1
        assert "aggregate: unsafe" in capsys.readouterr().out

    def test_single_property_selection(self, mixed_model, capsys):
        assert main(["check", mixed_model, "--property", "0"]) == 0
        out = capsys.readouterr().out
        assert "b0" in out and "aggregate: safe" in out

    def test_unknown_property_number(self, mixed_model, capsys):
        assert main(["check", mixed_model, "--property", "7"]) == 2
        assert "available" in capsys.readouterr().out


class TestLivenessEngines:
    def test_klive_proves_safe_ring(self, live_safe_model, capsys):
        assert main(
            ["check", live_safe_model, "--engine", "klive", "--max-k", "8"]
        ) == 0
        assert "safe" in capsys.readouterr().out

    def test_l2s_refutes_buggy_ring_with_lasso(self, live_buggy_model, capsys):
        assert main(["check", live_buggy_model, "--engine", "l2s"]) == 1
        out = capsys.readouterr().out
        assert "lasso" in out

    def test_safety_engine_gives_helpful_error_on_justice_only(
        self, live_safe_model, capsys
    ):
        with pytest.raises(Exception) as excinfo:
            main(["check", live_safe_model, "--engine", "ic3"])
        message = str(excinfo.value)
        assert "justice" in message and "l2s" in message


class TestLivenessEvaluate:
    def test_liveness_suite_smoke(self, capsys, monkeypatch, tmp_path):
        import repro.cli as cli
        from repro.benchgen.liveness import handshake_live

        monkeypatch.setattr(
            cli,
            "liveness_suite",
            lambda: [handshake_live(safe=True), mixed_properties(3)],
        )
        output = tmp_path / "live.json"
        assert main(
            [
                "evaluate",
                "--suite",
                "liveness",
                "--timeout",
                "30",
                "--output",
                str(output),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "j0" in out and "b1" in out
        manifest = json.loads(output.read_text())
        from repro.harness.manifest import MANIFEST_SCHEMA

        assert manifest["schema"] == MANIFEST_SCHEMA
        mixed = [r for r in manifest["results"] if r["case"] == "livemix_n3"][0]
        assert [p["result"] for p in mixed["properties"]] == [
            "safe",
            "unsafe",
            "safe",
        ]
        assert all(p["validated"] for p in mixed["properties"])
