"""End-to-end tests of the asyncio HTTP front end and the CLI client."""

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.aiger import write_aag
from repro.aiger.writer import to_aag_string
from repro.benchgen import token_ring
from repro.cli import main
from repro.serve.server import JobServer
from repro.serve.service import VerificationService

SAFE_TEXT = to_aag_string(token_ring(3, safe=True).aig)


class ServerUnderTest:
    """A JobServer on an ephemeral port driven from a background thread."""

    def __init__(self, **service_kwargs):
        service_kwargs.setdefault("workers", 2)
        service_kwargs.setdefault("default_timeout", 20.0)
        service_kwargs.setdefault("tenant_burst", 100.0)
        self.service = VerificationService(**service_kwargs)
        self.server = JobServer(self.service, port=0)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self.loop.run_forever()

    def start(self):
        self._thread.start()
        deadline = time.monotonic() + 10
        while self.server._server is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert self.server._server is not None, "server failed to start"
        return self

    def stop(self):
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)
        self.service.stop()

    @property
    def base(self):
        return self.server.address

    def request(self, path, *, data=None, headers=None, method=None):
        req = urllib.request.Request(
            self.base + path, data=data, headers=headers or {}, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as response:
                return response.status, json.loads(response.read()), dict(response.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read()), dict(exc.headers)

    def request_text(self, path, *, headers=None):
        req = urllib.request.Request(self.base + path, headers=headers or {})
        with urllib.request.urlopen(req, timeout=30) as response:
            return (
                response.status,
                response.read().decode("utf-8"),
                dict(response.headers),
            )

    def poll_done(self, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, payload, _ = self.request(f"/jobs/{job_id}")
            assert status == 200
            if payload["status"] in ("done", "failed"):
                return payload
            time.sleep(0.1)
        raise AssertionError(f"job {job_id} did not finish in {timeout}s")


@pytest.fixture
def server():
    srv = ServerUnderTest().start()
    yield srv
    srv.stop()


class TestHttpApi:
    def test_health_and_metrics(self, server):
        status, health, _ = server.request("/health")
        assert status == 200 and health["status"] == "ok"
        status, metrics, _ = server.request("/metrics.json")
        assert status == 200
        assert metrics["jobs_submitted"] == 0
        assert "uptime_seconds" in metrics

    def test_metrics_content_negotiation(self, server):
        from repro.obs.metrics import parse_prometheus

        status, text, headers = server.request_text("/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        families = parse_prometheus(text)
        assert families["repro_serve_jobs_submitted_total"]["type"] == "counter"
        assert "repro_serve_queue_depth" in families

        status, metrics, _ = server.request(
            "/metrics", headers={"Accept": "application/json"}
        )
        assert status == 200
        assert metrics["jobs_submitted"] == 0

    def test_submit_poll_and_cached_resubmit(self, server):
        body = json.dumps({"model": SAFE_TEXT, "timeout": 20}).encode()
        status, payload, headers = server.request(
            "/jobs", data=body, headers={"X-Tenant": "t1"}, method="POST"
        )
        assert status == 202
        assert headers["Location"] == f"/jobs/{payload['id']}"
        done = server.poll_done(payload["id"])
        assert done["result"]["result"] == "safe"

        status, second, _ = server.request("/jobs", data=body, method="POST")
        assert status == 200
        assert second["cache_hit"] is True
        assert second["result"] == done["result"]

        _, metrics, _ = server.request("/metrics.json")
        assert metrics["jobs_submitted"] == 2
        assert metrics["cache_hits"] == 1
        # The solved job fed the latency histograms (satellite contract:
        # the JSON snapshot stays flat-counter compatible, the histogram
        # block is additive).
        assert metrics["histograms"]["solve_latency_seconds"]["safe"]["count"] >= 1
        assert metrics["histograms"]["queue_latency_seconds"]["count"] >= 1

    def test_raw_aag_body_accepted(self, server):
        status, payload, _ = server.request(
            "/jobs", data=SAFE_TEXT.encode(), method="POST"
        )
        assert status == 202
        assert server.poll_done(payload["id"])["result"]["result"] == "safe"

    def test_malformed_bodies_rejected(self, server):
        for body in (b"garbage", b'{"engine": "ic3"}', b'{"model": 7}'):
            status, payload, _ = server.request("/jobs", data=body, method="POST")
            assert status == 400, body
            assert "error" in payload

    def test_unknown_routes_and_methods(self, server):
        assert server.request("/nope")[0] == 404
        assert server.request("/jobs/job-unknown")[0] == 404
        status, _, headers = server.request("/health", data=b"x", method="POST")
        assert status == 405
        assert headers["Allow"] == "GET, POST"

    def test_jobs_listing(self, server):
        status, payload, _ = server.request(
            "/jobs", data=SAFE_TEXT.encode(), method="POST"
        )
        server.poll_done(payload["id"])
        status, listing, _ = server.request("/jobs")
        assert status == 200
        assert any(job["id"] == payload["id"] for job in listing["jobs"])


class TestBackpressureOverHttp:
    def test_queue_full_answers_503_with_retry_after(self):
        server = ServerUnderTest(workers=1, queue_depth=1).start()
        try:
            server.service.pool.pause()
            body = SAFE_TEXT.encode()
            assert server.request("/jobs", data=body, method="POST")[0] == 202
            status, payload, headers = server.request("/jobs", data=body, method="POST")
            assert status == 503
            assert "Retry-After" in headers
            assert int(headers["Retry-After"]) >= 1
            assert payload["retry_after"] >= 1
            server.service.pool.resume()
        finally:
            server.stop()

    def test_retry_after_tracks_observed_drain_rate(self):
        server = ServerUnderTest(workers=1, queue_depth=1).start()
        try:
            # Seed the solve-latency histogram as if jobs had completed
            # with a 6 s mean, then check the 503's Retry-After is derived
            # from that observed drain rate, not the static default budget.
            server.service.metrics.observe_solve_latency("safe", 6.0)
            server.service.pool.pause()
            body = SAFE_TEXT.encode()
            assert server.request("/jobs", data=body, method="POST")[0] == 202
            status, payload, headers = server.request("/jobs", data=body, method="POST")
            assert status == 503

            _, metrics, _ = server.request("/metrics.json")
            solve = metrics["histograms"]["solve_latency_seconds"]
            mean = sum(v["sum"] for v in solve.values()) / sum(
                v["count"] for v in solve.values()
            )
            backlog = metrics["queue_depth"] + metrics["busy_workers"]
            expected = max(1.0, mean * max(1, backlog) / server.service.pool.size)
            assert int(headers["Retry-After"]) == int(expected + 0.999)
            assert payload["retry_after"] == int(expected + 0.999)
            server.service.pool.resume()
        finally:
            server.stop()

    def test_tenant_budget_answers_429_with_retry_after(self):
        server = ServerUnderTest(tenant_rate=0.001, tenant_burst=1.0).start()
        try:
            server.service.pool.pause()
            body = SAFE_TEXT.encode()
            headers = {"X-Tenant": "greedy"}
            assert server.request("/jobs", data=body, headers=headers, method="POST")[0] == 202
            status, payload, reply_headers = server.request(
                "/jobs", data=body, headers=headers, method="POST"
            )
            assert status == 429
            assert "Retry-After" in reply_headers
            _, metrics, _ = server.request("/metrics.json")
            assert metrics["budget_rejections"] == 1
            assert metrics["tenant_tokens"]["greedy"] < 1.0
        finally:
            server.stop()


class TestCliClient:
    def test_submit_wait_round_trip(self, server, tmp_path, capsys):
        model = tmp_path / "ring.aag"
        write_aag(token_ring(3, safe=True).aig, model)
        code = main(
            ["submit", str(model), "--url", server.base, "--wait", "60",
             "--timeout", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert '"status": "done"' in out
        assert '"result": "safe"' in out

    def test_submit_rejection_reported(self, tmp_path, capsys):
        server = ServerUnderTest(tenant_rate=0.001, tenant_burst=1.0).start()
        try:
            server.service.pool.pause()
            model = tmp_path / "ring.aag"
            write_aag(token_ring(3, safe=True).aig, model)
            args = ["submit", str(model), "--url", server.base, "--tenant", "t"]
            assert main(args) == 0
            assert main(args) == 2
            assert "rejected (429)" in capsys.readouterr().out
        finally:
            server.stop()
