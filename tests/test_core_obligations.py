"""Tests for proof obligations and their priority queue."""

import pytest

from repro.core.obligations import Obligation, ObligationQueue
from repro.logic import Cube


class TestObligation:
    def test_chain_to_bad(self):
        root = Obligation(level=3, depth=0, cube=Cube([1]))
        middle = Obligation(level=2, depth=1, cube=Cube([2]), successor=root)
        leaf = Obligation(level=1, depth=2, cube=Cube([3]), successor=middle)
        chain = leaf.chain_to_bad()
        assert [o.cube for o in chain] == [Cube([3]), Cube([2]), Cube([1])]

    def test_chain_of_single_obligation(self):
        root = Obligation(level=1, depth=0, cube=Cube([1]))
        assert root.chain_to_bad() == [root]

    def test_inputs_default_empty(self):
        assert Obligation(level=1, depth=0, cube=Cube([1])).inputs == {}


class TestObligationQueue:
    def test_empty_queue(self):
        queue = ObligationQueue()
        assert queue.is_empty()
        assert len(queue) == 0
        assert queue.peek_level() is None
        with pytest.raises(IndexError):
            queue.pop()

    def test_lowest_level_first(self):
        queue = ObligationQueue()
        queue.push(Obligation(level=3, depth=0, cube=Cube([1])))
        queue.push(Obligation(level=1, depth=0, cube=Cube([2])))
        queue.push(Obligation(level=2, depth=0, cube=Cube([3])))
        assert queue.pop().level == 1
        assert queue.pop().level == 2
        assert queue.pop().level == 3

    def test_deeper_first_within_level(self):
        queue = ObligationQueue()
        shallow = Obligation(level=2, depth=1, cube=Cube([1]))
        deep = Obligation(level=2, depth=5, cube=Cube([2]))
        queue.push(shallow)
        queue.push(deep)
        assert queue.pop() is deep
        assert queue.pop() is shallow

    def test_fifo_among_equal_priorities(self):
        queue = ObligationQueue()
        first = Obligation(level=1, depth=0, cube=Cube([1]))
        second = Obligation(level=1, depth=0, cube=Cube([2]))
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_peek_level(self):
        queue = ObligationQueue()
        queue.push(Obligation(level=4, depth=0, cube=Cube([1])))
        assert queue.peek_level() == 4
        queue.push(Obligation(level=2, depth=0, cube=Cube([2])))
        assert queue.peek_level() == 2

    def test_len_tracks_push_pop(self):
        queue = ObligationQueue()
        for level in range(5):
            queue.push(Obligation(level=level, depth=0, cube=Cube([level + 1])))
        assert len(queue) == 5
        queue.pop()
        assert len(queue) == 4

    def test_clear(self):
        queue = ObligationQueue()
        queue.push(Obligation(level=1, depth=0, cube=Cube([1])))
        queue.clear()
        assert queue.is_empty()
