"""Witness lift-back composition: reduction passes + liveness stacked.

The liveness engines hand the *compiled* circuit to an inner engine that
runs the full :mod:`repro.reduce` pipeline, so a witness crosses two
lift-back layers: reduction recon (reduced -> compiled model) and the
liveness transformation (compiled -> original lasso / certificate).
These tests pin the composed result down against the stock oracles on
the ORIGINAL model.
"""

import pytest

from repro.benchgen.liveness import mixed_properties, token_ring_live
from repro.core.invariant import check_certificate, check_counterexample
from repro.core.result import CheckResult
from repro.engines import create_engine
from repro.props import (
    PropertyScheduler,
    check_lasso,
    check_liveness_certificate,
    liveness_to_safety,
)

pytestmark = pytest.mark.liveness


class TestLassoThroughReduction:
    @pytest.mark.parametrize("reduce", [True, False])
    def test_lifted_lasso_validates_on_original(self, reduce):
        case = token_ring_live(4, safe=False)
        outcome = create_engine(
            "l2s", case.aig, inner="bmc", reduce=reduce
        ).check(time_limit=60)
        assert outcome.result == CheckResult.UNSAFE
        assert check_lasso(case.aig, outcome.lasso)

    def test_reduced_and_unreduced_lassos_agree_on_validity(self):
        case = token_ring_live(3, safe=False)
        with_reduce = create_engine("l2s", case.aig, inner="bmc").check(time_limit=60)
        without = create_engine(
            "l2s", case.aig, inner="bmc", reduce=False
        ).check(time_limit=60)
        assert check_lasso(case.aig, with_reduce.lasso)
        assert check_lasso(case.aig, without.lasso)

    def test_explicit_pass_selection_composes(self):
        case = token_ring_live(3, safe=False)
        outcome = create_engine(
            "l2s", case.aig, inner="bmc", passes=["coi", "ternary", "coi"]
        ).check(time_limit=60)
        assert outcome.result == CheckResult.UNSAFE
        assert check_lasso(case.aig, outcome.lasso)


class TestCertificateThroughReduction:
    @pytest.mark.parametrize("reduce", [True, False])
    def test_l2s_certificate_validates_via_recompilation(self, reduce):
        case = token_ring_live(3, safe=True)
        outcome = create_engine("l2s", case.aig, reduce=reduce).check(time_limit=60)
        assert outcome.result == CheckResult.SAFE
        # The certificate must be inductive on the deterministically
        # recompiled circuit — i.e. the reduction lift-back restored the
        # compiled model's variable numbering exactly.
        assert check_liveness_certificate(
            case.aig, outcome.certificate, justice_index=0, method="l2s"
        )

    @pytest.mark.parametrize("reduce", [True, False])
    def test_klive_certificate_validates_via_recompilation(self, reduce):
        case = token_ring_live(3, safe=True)
        outcome = create_engine(
            "klive", case.aig, max_k=8, reduce=reduce
        ).check(time_limit=120)
        assert outcome.result == CheckResult.SAFE
        assert check_liveness_certificate(
            case.aig,
            outcome.certificate,
            justice_index=0,
            method="klive",
            max_k=8,
            k=outcome.transformation["k"],
        )


class TestSafetyWitnessesInTheSameBatch:
    """Safety obligations of a mixed model validate on the original AIG
    with the unchanged stock oracles, reduction included."""

    def test_safety_trace_and_certificate_on_original(self):
        case = mixed_properties(4)
        safe_outcome = create_engine(
            "ic3-pl", case.aig, property_index=0
        ).check(time_limit=60)
        assert safe_outcome.result == CheckResult.SAFE
        assert check_certificate(case.aig, safe_outcome.certificate, property_index=0)

        unsafe_outcome = create_engine(
            "bmc", case.aig, property_index=1
        ).check(time_limit=60)
        assert unsafe_outcome.result == CheckResult.UNSAFE
        assert check_counterexample(case.aig, unsafe_outcome.trace, property_index=1)

    def test_scheduler_batch_is_fully_validated(self):
        case = mixed_properties(4)
        result = PropertyScheduler(case.aig, max_k=8).run(time_limit=120)
        assert [v.result for v in result.verdicts] == case.expected_properties
        # Every SAFE verdict's certificate and every UNSAFE verdict's
        # trace/lasso was checked against the original model.
        for verdict in result.verdicts:
            assert verdict.validated is True


class TestL2SLiftDetails:
    def test_loop_start_matches_save_oracle(self):
        case = token_ring_live(3, safe=False)
        compiled = liveness_to_safety(case.aig, 0)
        outcome = create_engine("bmc", compiled.aig, reduce=False).check(time_limit=60)
        assert outcome.result == CheckResult.UNSAFE
        lasso = compiled.lift_trace(outcome.trace)
        saves = [
            step.inputs.get(compiled.save_lit, False) for step in outcome.trace.steps
        ]
        assert lasso.loop_start == saves.index(True)
        assert len(lasso.steps) == len(outcome.trace.steps) - 1

    def test_lasso_inputs_speak_original_literals(self):
        case = token_ring_live(3, safe=False)
        outcome = create_engine("l2s", case.aig, inner="bmc").check(time_limit=60)
        for step in outcome.lasso.steps:
            assert set(step.inputs) == set(case.aig.inputs)
