"""Ground-truth validation of the generated benchmark circuits.

Every generator's ``expected`` verdict is checked against an independent
oracle: explicit-state reachability (breadth-first search over the latch
state space with all input combinations) for the small instances, and BMC
for the expected counterexample depths.
"""

import itertools

import pytest

from repro.benchgen import (
    combination_lock,
    counter_overflow,
    fifo_controller,
    johnson_counter,
    lfsr,
    modular_counter,
    parity_counter,
    pipeline_tag,
    round_robin_arbiter,
    saturating_counter,
    token_ring,
    traffic_light,
)
from repro.core import BMC, CheckResult


def exhaustive_bad_reachability(aig, max_states=1 << 14):
    """Explicit-state BFS; returns (bad_reachable, shortest_depth or None)."""
    assert aig.num_latches <= 12, "circuit too large for explicit search"
    assert aig.num_inputs <= 4, "too many inputs for explicit search"

    input_combos = [
        dict(zip(aig.inputs, values))
        for values in itertools.product([False, True], repeat=aig.num_inputs)
    ]
    initial = tuple(bool(latch.init) if latch.init else False for latch in aig.latches)
    frontier = {initial}
    visited = {initial}
    depth = 0
    while frontier:
        next_frontier = set()
        for state in frontier:
            latch_values = {
                latch.lit: value for latch, value in zip(aig.latches, state)
            }
            for inputs in input_combos:
                values = aig._evaluate_combinational(inputs, latch_values)
                bads = aig.bads if aig.bads else aig.outputs
                if values[bads[0]]:
                    return True, depth
                successor = tuple(values[latch.next] for latch in aig.latches)
                if successor not in visited:
                    visited.add(successor)
                    next_frontier.add(successor)
        if len(visited) > max_states:
            raise RuntimeError("state space larger than expected")
        frontier = next_frontier
        depth += 1
    return False, None


SMALL_CASES = [
    counter_overflow(3, safe=True),
    counter_overflow(3, safe=False),
    parity_counter(3, safe=True),
    parity_counter(3, safe=False),
    modular_counter(3, modulus=6, bad_value=7),
    modular_counter(3, modulus=6, bad_value=4),
    saturating_counter(3, limit=5, bad_value=7),
    saturating_counter(3, limit=5, bad_value=3),
    token_ring(4, safe=True),
    token_ring(4, safe=False),
    johnson_counter(4, safe=True),
    johnson_counter(4, safe=False),
    lfsr(4, safe=True),
    lfsr(4, safe=False, unsafe_depth=5),
    pipeline_tag(3, safe=True),
    pipeline_tag(3, safe=False),
    round_robin_arbiter(3, safe=True),
    round_robin_arbiter(3, safe=False),
    fifo_controller(2, safe=True),
    fifo_controller(2, safe=False),
    traffic_light(safe=True),
    traffic_light(safe=False),
    combination_lock([1, 2, 3]),
    combination_lock([1, 2], safe=True),
]


class TestGroundTruthByExplicitSearch:
    @pytest.mark.parametrize("case", SMALL_CASES, ids=lambda c: c.name)
    def test_expected_verdict_matches_reachability(self, case):
        reachable, depth = exhaustive_bad_reachability(case.aig)
        if case.expected == CheckResult.UNSAFE:
            assert reachable, f"{case.name} declared UNSAFE but bad is unreachable"
            if case.expected_depth is not None:
                assert depth == case.expected_depth
        elif case.expected == CheckResult.SAFE:
            assert not reachable, f"{case.name} declared SAFE but bad is reachable"

    @pytest.mark.parametrize("case", SMALL_CASES, ids=lambda c: c.name)
    def test_circuits_are_wellformed(self, case):
        case.aig.validate()
        assert case.aig.bads, "every benchmark must declare a bad property"
        assert case.num_latches == case.aig.num_latches
        assert case.describe().startswith(case.name)


class TestExpectedDepthsAgainstBMC:
    @pytest.mark.parametrize(
        "case",
        [c for c in SMALL_CASES if c.expected == CheckResult.UNSAFE],
        ids=lambda c: c.name,
    )
    def test_bmc_confirms_shortest_depth(self, case):
        depth = case.expected_depth
        assert depth is not None
        bmc = BMC(case.aig)
        if depth > 0:
            assert bmc.check_depth(depth - 1) is False
        assert bmc.check_depth(depth) is True


class TestGeneratorParameterValidation:
    def test_counter_rejects_bad_width(self):
        with pytest.raises(ValueError):
            counter_overflow(0)
        with pytest.raises(ValueError):
            parity_counter(1)

    def test_modular_counter_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            modular_counter(3, modulus=0, bad_value=1)
        with pytest.raises(ValueError):
            modular_counter(3, modulus=20, bad_value=1)
        with pytest.raises(ValueError):
            modular_counter(3, modulus=6, bad_value=9)

    def test_saturating_counter_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            saturating_counter(3, limit=0, bad_value=1)
        with pytest.raises(ValueError):
            saturating_counter(3, limit=9, bad_value=1)

    def test_registers_reject_bad_parameters(self):
        with pytest.raises(ValueError):
            token_ring(1)
        with pytest.raises(ValueError):
            johnson_counter(2)
        with pytest.raises(ValueError):
            lfsr(9)
        with pytest.raises(ValueError):
            pipeline_tag(1)

    def test_arbiter_fifo_lock_reject_bad_parameters(self):
        with pytest.raises(ValueError):
            round_robin_arbiter(1)
        with pytest.raises(ValueError):
            fifo_controller(1)
        with pytest.raises(ValueError):
            combination_lock([])
        with pytest.raises(ValueError):
            combination_lock([4], symbol_bits=2)

    def test_case_metadata(self):
        case = johnson_counter(5)
        assert case.family == "johnson"
        assert case.params["width"] == 5
        assert case.expected == CheckResult.SAFE
