"""Tests for the flat-arena CDCL kernel.

The arena solver must be behaviourally indistinguishable from the
reference :class:`repro.sat.solver.Solver` — same verdicts, sound
models, usable cores, identical activation-literal semantics — while
storing the clause database in flat integer arenas.  The differential
tests here drive both backends through the same randomized incremental
workload (the harness of ``test_sat_context.py``, pointed at the arena)
and the registry-guard tests pin down the built-in backend protection.
"""

import itertools
import random

import pytest

from repro.sat import (
    ArenaClauseRef,
    ArenaSolver,
    ResourceBudgetExceeded,
    Solver,
    SolverError,
    available_sat_backends,
    register_sat_backend,
    sat_backend,
    unregister_sat_backend,
)


def brute_force_satisfiable(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any((lit > 0) == bits[abs(lit) - 1] for lit in cl) for cl in clauses):
            return True
    return False


def _pigeonhole(solver, pigeons=5, holes=4):
    def var(i, j):
        return holes * (i - 1) + j

    for i in range(1, pigeons + 1):
        solver.add_clause([var(i, j) for j in range(1, holes + 1)])
    for j in range(1, holes + 1):
        for i1, i2 in itertools.combinations(range(1, pigeons + 1), 2):
            solver.add_clause([-var(i1, j), -var(i2, j)])


class TestArenaBasics:
    def test_empty_is_sat(self):
        assert ArenaSolver().solve() is True

    def test_unit_propagation_fixes_model(self):
        solver = ArenaSolver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        assert solver.solve() is True
        model = solver.get_model()
        assert model[1] is True and model[2] is True

    def test_contradictory_units_unsat(self):
        solver = ArenaSolver()
        solver.add_clause([1])
        assert solver.add_clause([-1]) is False
        assert solver.solve() is False

    def test_tautology_ignored(self):
        solver = ArenaSolver()
        assert solver.add_clause([1, -1]) is True
        assert solver.solve() is True

    def test_zero_literal_rejected(self):
        with pytest.raises(SolverError):
            ArenaSolver().add_clause([0])

    def test_pigeonhole_unsat(self):
        solver = ArenaSolver()
        _pigeonhole(solver, pigeons=4, holes=3)
        assert solver.solve() is False

    def test_assumptions_and_core(self):
        solver = ArenaSolver()
        solver.ensure_var(3)
        solver.add_clause([-1, -2])
        assert solver.solve([1, 2]) is False
        core = solver.unsat_core()
        assert set(core) <= {1, 2} and core
        # The core alone must still be unsatisfiable.
        assert solver.solve(core) is False
        # Dropping one assumption restores satisfiability.
        assert solver.solve([1]) is True

    def test_incremental_reuse_across_solves(self):
        solver = ArenaSolver()
        solver.add_clause([1, 2])
        assert solver.solve([-1]) is True
        solver.add_clause([-2, 3])
        assert solver.solve([-1]) is True
        model = solver.get_model()
        assert model[2] is True and model[3] is True
        assert solver.stats.solve_calls == 2

    def test_stats_expose_kernel_counters(self):
        solver = ArenaSolver()
        solver.add_clause([1, 2, 3])
        solver.add_clause([-1, 2])
        solver.solve([-2])
        stats = solver.stats.as_dict()
        for key in (
            "watch_traversals",
            "blocker_hits",
            "literal_pool_bytes",
            "arena_compactions",
        ):
            assert key in stats
        assert solver.stats.literal_pool_bytes > 0

    def test_budget_exhaustion_raises(self):
        solver = ArenaSolver(restart_base=1)
        _pigeonhole(solver)
        with pytest.raises(ResourceBudgetExceeded):
            solver.solve(conflict_budget=3)

    def test_solve_limited_returns_none(self):
        solver = ArenaSolver(restart_base=1)
        _pigeonhole(solver)
        assert solver.solve_limited(conflict_budget=3) is None
        # The budget verdict must not poison later unrestricted solves.
        assert solver.solve() is False


class TestActivationLayer:
    def test_guarded_clause_active_only_under_assumption(self):
        solver = ArenaSolver()
        solver.ensure_var(2)
        act = solver.new_activation()
        solver.add_guarded(act, [1])
        solver.add_guarded(act, [2])
        assert solver.solve([act, -1]) is False
        assert solver.solve([-1]) is True  # group not selected

    def test_remove_guarded_disables_one_clause(self):
        solver = ArenaSolver()
        solver.ensure_var(2)
        act = solver.new_activation()
        _, handle = solver.add_guarded(act, [1, 2])
        assert isinstance(handle, ArenaClauseRef)
        solver.remove_guarded(act, handle)
        assert solver.solve([act, -1, -2]) is True
        # Removal is idempotent: the counter must not advance again.
        assert solver.stats.guarded_clauses_freed == 1
        solver.remove_guarded(act, handle)
        assert solver.stats.guarded_clauses_freed == 1

    def test_remove_guarded_implied_clause_keeps_verdicts(self):
        solver = ArenaSolver()
        solver.ensure_var(3)
        act = solver.new_activation()
        _, _strong = solver.add_guarded(act, [1])
        _, weak = solver.add_guarded(act, [1, 2])
        # The weak clause is implied by the strong one: removable.
        solver.remove_guarded(act, weak)
        assert solver.solve([act, -1]) is False
        assert solver.solve([-1, -2]) is True  # weak clause really gone

    def test_remove_guarded_rejects_foreign_handle(self):
        solver = ArenaSolver()
        solver.ensure_var(2)
        act = solver.new_activation()
        other = Solver()
        other.ensure_var(2)
        other_act = other.new_activation()
        _, foreign = other.add_guarded(other_act, [1, 2])
        with pytest.raises(SolverError, match="does not belong"):
            solver.remove_guarded(act, foreign)

    def test_release_frees_group_and_recycles_var(self):
        solver = ArenaSolver()
        solver.ensure_var(2)
        act = solver.new_activation()
        solver.add_guarded(act, [1])
        solver.release(act)
        assert solver.solve([-1]) is True
        # A released (non-retired) activation var is handed out again.
        act2 = solver.new_activation()
        assert act2 == act
        assert solver.stats.activation_vars_recycled == 1

    def test_removed_clauses_never_resurface_after_many_groups(self):
        solver = ArenaSolver()
        solver.ensure_var(4)
        for _ in range(50):
            act = solver.new_activation()
            solver.add_guarded(act, [1, 2])
            solver.add_guarded(act, [3, 4])
            assert solver.solve([act, -1, -3]) is True
            solver.release(act)
        assert solver.solve([-1, -2, -3, -4]) is True


class TestCompaction:
    def test_churn_triggers_compaction_and_preserves_answers(self):
        solver = ArenaSolver()
        oracle = Solver()
        num_vars = 12
        solver.ensure_var(num_vars)
        oracle.ensure_var(num_vars)
        rng = random.Random(77)
        # Permanent skeleton both solvers share.
        for _ in range(10):
            clause = [
                rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(3)
            ]
            solver.add_clause(clause)
            oracle.add_clause(clause)
        # Churn: large short-lived guarded groups leave dead words behind.
        for round_no in range(60):
            act_a = solver.new_activation()
            act_o = oracle.new_activation()
            for _ in range(40):
                clause = [
                    rng.choice([-1, 1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(2, 5))
                ]
                solver.add_guarded(act_a, clause)
                oracle.add_guarded(act_o, clause)
            assumption = rng.choice([-1, 1]) * rng.randint(1, num_vars)
            assert solver.solve([act_a, assumption]) == oracle.solve(
                [act_o, assumption]
            )
            solver.release(act_a)
            oracle.release(act_o)
        assert solver.stats.arena_compactions >= 1
        # Post-compaction the solvers still agree on fresh queries.
        for _ in range(20):
            assumptions = [
                rng.choice([-1, 1]) * v
                for v in rng.sample(range(1, num_vars + 1), 3)
            ]
            assert solver.solve(assumptions) == oracle.solve(assumptions)


class TestDifferentialAgainstDefault:
    """The randomized incremental harness, arena vs reference solver."""

    @pytest.mark.parametrize("seed", [20240707, 20240708, 20240709])
    def test_randomized_incremental_agreement(self, seed):
        rng = random.Random(seed)
        ref, arena = Solver(), ArenaSolver()
        num_vars = 10
        ref.ensure_var(num_vars)
        arena.ensure_var(num_vars)
        groups = []  # [act_ref, act_arena, [(handle_ref, handle_arena, lits)]]

        def random_clause():
            return [
                rng.choice([-1, 1]) * rng.randint(1, num_vars)
                for _ in range(rng.randint(1, 4))
            ]

        for step in range(400):
            roll = rng.random()
            if roll < 0.25 or not groups:
                groups.append([ref.new_activation(), arena.new_activation(), []])
            elif roll < 0.45:
                group = rng.choice(groups)
                lits = random_clause()
                _, h_ref = ref.add_guarded(group[0], lits)
                _, h_arena = arena.add_guarded(group[1], lits)
                group[2].append((h_ref, h_arena, lits))
            elif roll < 0.55 and any(g[2] for g in groups):
                group = rng.choice([g for g in groups if g[2]])
                h_ref, h_arena, _ = group[2].pop(rng.randrange(len(group[2])))
                if h_ref is not None:
                    ref.remove_guarded(group[0], h_ref)
                if h_arena is not None:
                    arena.remove_guarded(group[1], h_arena)
            elif roll < 0.6:
                group = groups.pop(rng.randrange(len(groups)))
                ref.release(group[0])
                arena.release(group[1])
            else:
                if rng.random() < 0.3:
                    lits = random_clause()
                    assert ref.add_clause(lits) == arena.add_clause(lits)
                active = rng.sample(groups, rng.randint(0, len(groups)))
                extra = [
                    rng.choice([-1, 1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(0, 2))
                ]
                verdict_ref = ref.solve([g[0] for g in active] + extra)
                verdict_arena = arena.solve([g[1] for g in active] + extra)
                assert verdict_ref == verdict_arena, (seed, step)
                if verdict_arena:
                    model = arena.get_model()
                    for group in active:
                        for _, _, lits in group[2]:
                            assert any(
                                model.get(abs(l), False) == (l > 0) for l in lits
                            ), (seed, step, lits)
                    for lit in extra:
                        assert model.get(abs(lit), False) == (lit > 0)
                else:
                    core = arena.unsat_core()
                    assert arena.solve(core) is False, (seed, step)
        # Trail reuse must have kicked in somewhere over 400 steps.
        assert arena.stats.solve_calls > 0

    def test_trail_reuse_counter_advances(self):
        arena = ArenaSolver()
        arena.ensure_var(6)
        arena.add_clause([1, 2])
        arena.add_clause([-2, 3])
        for _ in range(5):
            assert arena.solve([1, 2, 4]) is True
        assert arena.stats.assumption_levels_reused > 0


class TestAgainstBruteForce:
    def test_verdicts_match_enumeration(self):
        rng = random.Random(424242)
        for _trial in range(150):
            num_vars = rng.randint(2, 5)
            clauses = [
                [
                    rng.choice([-1, 1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(1, 3))
                ]
                for _ in range(rng.randint(1, 10))
            ]
            solver = ArenaSolver()
            solver.ensure_var(num_vars)
            ok = True
            for clause in clauses:
                ok = solver.add_clause(clause) and ok
            verdict = ok and solver.solve()
            assert verdict == brute_force_satisfiable(num_vars, clauses), clauses


class TestRegistryGuards:
    def test_builtin_backends_registered(self):
        names = available_sat_backends()
        assert "default" in names and "arena" in names
        assert sat_backend("default") is Solver
        assert sat_backend("arena") is ArenaSolver

    @pytest.mark.parametrize("name", ["default", "arena"])
    def test_builtin_backends_cannot_be_unregistered(self, name):
        with pytest.raises(SolverError, match="built in"):
            unregister_sat_backend(name)
        assert name in available_sat_backends()

    def test_reregistration_requires_override(self):
        register_sat_backend("guard-test", Solver)
        try:
            with pytest.raises(SolverError, match="override=True"):
                register_sat_backend("guard-test", ArenaSolver)
            assert sat_backend("guard-test") is Solver
            register_sat_backend("guard-test", ArenaSolver, override=True)
            assert sat_backend("guard-test") is ArenaSolver
        finally:
            unregister_sat_backend("guard-test")

    def test_shadowing_builtin_requires_override(self):
        with pytest.raises(SolverError, match="already registered"):
            register_sat_backend("arena", Solver)
        assert sat_backend("arena") is ArenaSolver
