"""Tests for the top-level package API and module exports."""

import importlib

import pytest

import repro
from repro import IC3, BMC, KInduction, IC3Options, CheckResult


class TestTopLevelExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_engines_importable_from_top_level(self):
        from repro.benchgen import token_ring

        case = token_ring(3)
        assert IC3(case.aig, IC3Options()).check().result == CheckResult.SAFE
        assert BMC(case.aig).check(max_depth=2).result == CheckResult.UNKNOWN
        assert KInduction(case.aig).check(max_k=5).result == CheckResult.SAFE

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.logic",
            "repro.sat",
            "repro.aiger",
            "repro.ts",
            "repro.core",
            "repro.reduce",
            "repro.benchgen",
            "repro.harness",
            "repro.cli",
        ],
    )
    def test_subpackage_exports_resolvable(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.logic.cube",
            "repro.sat.solver",
            "repro.aiger.aig",
            "repro.ts.system",
            "repro.core.ic3",
            "repro.core.predict",
            "repro.core.generalize",
            "repro.reduce.pipeline",
            "repro.reduce.recon",
            "repro.benchgen.suite",
            "repro.harness.report",
        ],
    )
    def test_public_modules_have_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_layering_logic_does_not_import_engine(self):
        import repro.logic.cube as cube_module

        source = open(cube_module.__file__).read()
        assert "repro.core" not in source
        assert "repro.sat" not in source
