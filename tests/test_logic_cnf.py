"""Unit tests for the CNF container."""

from hypothesis import given, strategies as st

from repro.logic import CNF, Clause, Cube


class TestConstruction:
    def test_empty(self):
        cnf = CNF()
        assert len(cnf) == 0
        assert cnf.num_vars() == 0
        assert not cnf.has_empty_clause()

    def test_add_returns_clause(self):
        cnf = CNF()
        clause = cnf.add([1, -2])
        assert isinstance(clause, Clause)
        assert clause in cnf

    def test_add_existing_clause_object(self):
        cnf = CNF()
        clause = Clause([3, 4])
        assert cnf.add(clause) is clause

    def test_from_iterable(self):
        cnf = CNF([[1, 2], [-1, 3]])
        assert len(cnf) == 2
        assert cnf.num_vars() == 3

    def test_extend_and_unit(self):
        cnf = CNF()
        cnf.extend([[1], [2, 3]])
        cnf.add_unit(-4)
        assert len(cnf) == 3
        assert Clause([-4]) in cnf

    def test_copy_is_independent(self):
        cnf = CNF([[1, 2]])
        other = cnf.copy()
        other.add([3])
        assert len(cnf) == 1
        assert len(other) == 2

    def test_empty_clause_detection(self):
        cnf = CNF()
        cnf.add([])
        assert cnf.has_empty_clause()

    def test_equality_ignores_order(self):
        assert CNF([[1, 2], [3]]) == CNF([[3], [2, 1]])

    def test_variables(self):
        assert CNF([[1, -5], [2]]).variables() == {1, 2, 5}


class TestEvaluation:
    def test_satisfied(self):
        cnf = CNF([[1, 2], [-1, 3]])
        assert cnf.evaluate({1: True, 3: True}) is True

    def test_falsified(self):
        cnf = CNF([[1, 2]])
        assert cnf.evaluate({1: False, 2: False}) is False

    def test_undecided(self):
        cnf = CNF([[1, 2]])
        assert cnf.evaluate({1: False}) is None

    def test_satisfied_by_cube(self):
        cnf = CNF([[1, 2], [-3]])
        assert cnf.satisfied_by(Cube([1, -3])) is True
        assert cnf.satisfied_by(Cube([-1, -2])) is False

    @given(
        st.lists(
            st.lists(st.integers(min_value=-4, max_value=4).filter(lambda x: x != 0),
                     min_size=1, max_size=3),
            min_size=1, max_size=5,
        ),
        st.dictionaries(st.integers(min_value=1, max_value=4), st.booleans(),
                        min_size=4, max_size=4),
    )
    def test_total_assignment_never_undecided(self, clauses, assignment):
        cnf = CNF(clauses)
        assert cnf.evaluate(assignment) in (True, False)


class TestDimacs:
    def test_roundtrip(self):
        cnf = CNF([[1, -2], [2, 3, -4], [-1]])
        parsed = CNF.from_dimacs(cnf.to_dimacs())
        assert parsed == cnf

    def test_header_and_terminators(self):
        text = CNF([[1, 2]]).to_dimacs()
        assert text.startswith("p cnf 2 1")
        assert text.strip().endswith("0")

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n"
        cnf = CNF.from_dimacs(text)
        assert len(cnf) == 2
        assert Clause([1, -2]) in cnf

    def test_parse_clause_spanning_lines(self):
        cnf = CNF.from_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert cnf.clauses == [Clause([1, 2, 3])]

    def test_explicit_num_vars(self):
        assert CNF([[1]]).to_dimacs(num_vars=10).startswith("p cnf 10 1")
