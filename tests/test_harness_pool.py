"""Failure-path tests for the hard-timeout process pool.

The happy path is exercised all over the harness tests; these cover what
happens when workers die, hang, or finish right at the deadline — the
guarantees the serve worker pool builds on.
"""

import multiprocessing
import os
import time

import pytest

from repro.harness.pool import (
    PoolResult,
    default_grace,
    map_with_hard_timeout,
    resolve_jobs,
)

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker fault injection relies on the fork start method",
)


def _echo(payload):
    return payload * 2


def _die(payload):
    os._exit(17)  # simulates a SIGKILL / segfault: no exception, no report


def _raise(payload):
    raise RuntimeError(f"bad payload {payload}")


def _hang(payload):
    time.sleep(120)


def _return_but_linger(payload):
    # The result reaches the pipe, but a non-daemon thread keeps the
    # worker process alive afterwards: the parent must keep the value
    # and still reap the process instead of leaking it.
    import threading

    threading.Thread(target=time.sleep, args=(120,), daemon=False).start()
    return payload


def _mixed(payload):
    if payload == "die":
        os._exit(9)
    if payload == "hang":
        time.sleep(120)
    return payload


class TestFailurePaths:
    def test_killed_worker_reports_error_not_hang(self):
        start = time.monotonic()
        results = map_with_hard_timeout(_die, ["x"], timeout=30.0, jobs=1)
        assert time.monotonic() - start < 10
        (result,) = results
        assert not result.ok
        assert not result.timed_out
        assert result.error == "worker died without reporting"

    def test_exception_is_reported_not_fatal(self):
        (result,) = map_with_hard_timeout(_raise, ["p1"], timeout=10.0, jobs=1)
        assert result.error == "RuntimeError: bad payload p1"
        assert not result.timed_out

    def test_hung_worker_is_hard_killed(self):
        start = time.monotonic()
        (result,) = map_with_hard_timeout(_hang, ["x"], timeout=0.3, jobs=1, grace=0.2)
        assert result.timed_out
        assert result.error is None
        assert time.monotonic() - start < 10
        # No orphaned worker processes survive the kill.
        assert not multiprocessing.active_children()

    def test_failures_do_not_poison_siblings(self):
        payloads = ["ok-1", "die", "ok-2", "hang", "ok-3"]
        results = map_with_hard_timeout(
            _mixed, payloads, timeout=1.0, jobs=2, grace=0.2
        )
        assert [r.ok for r in results] == [True, False, True, False, True]
        assert results[0].value == "ok-1"
        assert results[1].error == "worker died without reporting"
        assert results[3].timed_out
        assert results[4].value == "ok-3"
        assert not multiprocessing.active_children()

    def test_result_in_flight_survives_worker_lingering(self):
        start = time.monotonic()
        (result,) = map_with_hard_timeout(
            _return_but_linger, ["kept"], timeout=5.0, jobs=1
        )
        assert result.ok
        assert result.value == "kept"
        assert time.monotonic() - start < 10
        assert not multiprocessing.active_children()

    def test_completion_callback_sees_failures(self):
        seen = {}
        map_with_hard_timeout(
            _mixed,
            ["ok-1", "die"],
            timeout=5.0,
            jobs=2,
            on_result=lambda index, result: seen.__setitem__(index, result),
        )
        assert seen[0].ok
        assert not seen[1].ok


    def test_abort_with_queued_work_leaves_no_orphans(self):
        # A crashing completion callback aborts the pool mid-run while
        # payloads are still queued and a worker is still hanging; the
        # shutdown path must kill every live worker before propagating.
        def explode(index, result):
            raise RuntimeError("observer failed")

        with pytest.raises(RuntimeError, match="observer failed"):
            map_with_hard_timeout(
                _mixed,
                ["ok-1", "hang", "ok-2", "ok-3"],
                timeout=30.0,
                jobs=2,
                on_result=explode,
            )
        deadline = time.monotonic() + 5
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()


class TestParameters:
    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            map_with_hard_timeout(_echo, [1], timeout=0.0)

    def test_default_grace_clamped(self):
        assert default_grace(0.1) == 0.2
        assert default_grace(2.0) == 1.0
        assert default_grace(100.0) == 5.0

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_pool_result_ok_flag(self):
        assert PoolResult(value=1).ok
        assert not PoolResult(timed_out=True).ok
        assert not PoolResult(error="x").ok
