"""Unit tests for the Assignment helper."""

import pytest

from repro.logic import Assignment, Cube


class TestMappingProtocol:
    def test_set_and_get(self):
        assignment = Assignment()
        assignment[3] = True
        assert assignment[3] is True
        assert 3 in assignment
        assert len(assignment) == 1

    def test_init_from_mapping(self):
        assignment = Assignment({1: True, 2: False})
        assert assignment[1] is True
        assert assignment[2] is False

    def test_invalid_variable(self):
        with pytest.raises(ValueError):
            Assignment()[0] = True

    def test_get_default(self):
        assert Assignment().get(7) is None
        assert Assignment().get(7, False) is False

    def test_values_coerced_to_bool(self):
        assignment = Assignment({1: 1, 2: 0})
        assert assignment[1] is True
        assert assignment[2] is False

    def test_equality(self):
        assert Assignment({1: True}) == Assignment({1: True})
        assert Assignment({1: True}) != Assignment({1: False})

    def test_iteration_and_items(self):
        assignment = Assignment({1: True, 2: False})
        assert sorted(assignment) == [1, 2]
        assert dict(assignment.items()) == {1: True, 2: False}


class TestLiteralViews:
    def test_value_of_literal(self):
        assignment = Assignment({1: True, 2: False})
        assert assignment.value_of_literal(1) is True
        assert assignment.value_of_literal(-1) is False
        assert assignment.value_of_literal(2) is False
        assert assignment.value_of_literal(-2) is True
        assert assignment.value_of_literal(3) is None

    def test_satisfies_cube(self):
        assignment = Assignment({1: True, 2: False})
        assert assignment.satisfies_cube(Cube([1, -2]))
        assert not assignment.satisfies_cube(Cube([1, 2]))
        assert not assignment.satisfies_cube(Cube([1, 3]))  # unassigned

    def test_to_cube_all_variables(self):
        assignment = Assignment({1: True, 2: False})
        assert assignment.to_cube() == Cube([1, -2])

    def test_to_cube_projection(self):
        assignment = Assignment({1: True, 2: False, 3: True})
        assert assignment.to_cube([1, 3]) == Cube([1, 3])
        assert assignment.to_cube([4]) == Cube()

    def test_from_cube_roundtrip(self):
        cube = Cube([1, -2, 3])
        assert Assignment.from_cube(cube).to_cube() == cube

    def test_repr_contains_values(self):
        assert "1=1" in repr(Assignment({1: True}))
